"""Disk-backed B+tree with fixed-size pages.

Keys are unsigned 64-bit integers; values are small byte strings (at most
:data:`MAX_VALUE_BYTES`).  The tree supports bulk building from sorted
pairs (how the relational baseline creates its indexes), point lookups,
point inserts (leaf/internal splits, no deletes) and ascending range
scans.  Pages are read through a :class:`repro.storage.device.PageDevice`
(optionally behind a shared :class:`repro.storage.bufferpool.BufferPool`),
so index I/O is metered by the same counted-seek rule as every other
access path — a standalone probe shows up in ``io_stats()`` instead of
being an invisible raw ``seek()``.  The meta page is pinned in the pool,
"akin to the root node of B-tree indexes".

Page layout (4096 bytes)::

    meta page (page 0):  [magic u32][root u32][height u32][num_pages u32]
    internal page:       [type u8=0][count u16] [child u32]
                         ([key u64][child u32]) * count
    leaf page:           [type u8=1][count u16][next u32]
                         ([key u64][vlen u16][value]) * count   (packed)
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import StorageError
from repro.storage import atomic, integrity
from repro.storage.bufferpool import BufferPool
from repro.storage.device import PageDevice
from repro.storage.metrics import MetricsRegistry

PAGE_SIZE = 4096
MAX_VALUE_BYTES = 1024
#: Page-cache budget of a standalone tree (one not sharing an owner's pool).
DEFAULT_STANDALONE_POOL_BYTES = 64 * PAGE_SIZE

_META = struct.Struct("<IIII")
_MAGIC = 0xB7EE0001
_LEAF_HEADER = struct.Struct("<BHI")
_INTERNAL_HEADER = struct.Struct("<BH")
_KEY = struct.Struct("<Q")
_CHILD = struct.Struct("<I")
_VLEN = struct.Struct("<H")

_LEAF_ENTRY_OVERHEAD = _KEY.size + _VLEN.size
_INTERNAL_ENTRY = _KEY.size + _CHILD.size
_NO_PAGE = 0xFFFFFFFF


class _Leaf:
    """Parsed leaf node."""

    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self, keys: list[int], values: list[bytes], next_leaf: int) -> None:
        self.keys = keys
        self.values = values
        self.next_leaf = next_leaf

    def to_bytes(self) -> bytes:
        out = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(out, 0, 1, len(self.keys), self.next_leaf)
        position = _LEAF_HEADER.size
        for key, value in zip(self.keys, self.values):
            _KEY.pack_into(out, position, key)
            position += _KEY.size
            _VLEN.pack_into(out, position, len(value))
            position += _VLEN.size
            out[position : position + len(value)] = value
            position += len(value)
        if position > PAGE_SIZE:
            raise StorageError("leaf node overflow")
        return bytes(out)

    def bytes_used(self) -> int:
        return _LEAF_HEADER.size + sum(
            _LEAF_ENTRY_OVERHEAD + len(v) for v in self.values
        )


class _Internal:
    """Parsed internal node: children[i] covers keys < keys[i]; the last
    child covers the rest (children has len(keys)+1 entries)."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: list[int], children: list[int]) -> None:
        self.keys = keys
        self.children = children

    def to_bytes(self) -> bytes:
        out = bytearray(PAGE_SIZE)
        _INTERNAL_HEADER.pack_into(out, 0, 0, len(self.keys))
        position = _INTERNAL_HEADER.size
        _CHILD.pack_into(out, position, self.children[0])
        position += _CHILD.size
        for key, child in zip(self.keys, self.children[1:]):
            _KEY.pack_into(out, position, key)
            position += _KEY.size
            _CHILD.pack_into(out, position, child)
            position += _CHILD.size
        if position > PAGE_SIZE:
            raise StorageError("internal node overflow")
        return bytes(out)

    def bytes_used(self) -> int:
        return _INTERNAL_HEADER.size + _CHILD.size + len(self.keys) * _INTERNAL_ENTRY


def _parse(data: bytes) -> _Leaf | _Internal:
    if data[0] == 1:
        _, count, next_leaf = _LEAF_HEADER.unpack_from(data, 0)
        position = _LEAF_HEADER.size
        keys: list[int] = []
        values: list[bytes] = []
        for _ in range(count):
            (key,) = _KEY.unpack_from(data, position)
            position += _KEY.size
            (vlen,) = _VLEN.unpack_from(data, position)
            position += _VLEN.size
            values.append(bytes(data[position : position + vlen]))
            position += vlen
            keys.append(key)
        return _Leaf(keys, values, next_leaf)
    _, count = _INTERNAL_HEADER.unpack_from(data, 0)
    position = _INTERNAL_HEADER.size
    (first_child,) = _CHILD.unpack_from(data, position)
    position += _CHILD.size
    keys = []
    children = [first_child]
    for _ in range(count):
        (key,) = _KEY.unpack_from(data, position)
        position += _KEY.size
        (child,) = _CHILD.unpack_from(data, position)
        position += _CHILD.size
        keys.append(key)
        children.append(child)
    return _Internal(keys, children)


class BPlusTree:
    """A single-file B+tree.  Open an existing file or bulk-build a new one.

    ``device`` supplies counted page I/O (a private
    :class:`~repro.storage.device.PageDevice` is created when omitted, so
    even a standalone tree meters its reads); ``pool`` optionally caches
    pages in a shared buffer pool, as the relational baseline does for its
    heap and both indexes.  ``page_reader`` injects a raw read function
    and bypasses both (test hook).
    """

    def __init__(
        self,
        path: Path | str,
        page_reader=None,
        device: PageDevice | None = None,
        pool: BufferPool | None = None,
    ) -> None:
        self._path = Path(path)
        if not self._path.exists():
            raise StorageError(f"no B+tree file at {self._path}")
        if page_reader is None and device is None:
            device = PageDevice(self._path, PAGE_SIZE, MetricsRegistry())
        if page_reader is None and pool is None:
            # Standalone trees get a private page cache charged against the
            # device registry, so repeated descents over the same hot path
            # are buffer hits, exactly as under the relational baseline's
            # shared pool.
            pool = BufferPool(
                DEFAULT_STANDALONE_POOL_BYTES, registry=device.registry
            )
        self._device = device
        self._pool = pool
        self._page_reader = page_reader
        self._cache_tag = ("btree", str(self._path))
        meta_page = self._read_page_raw(0)
        if self._pool is not None:
            # Keep the meta page resident: it is re-read on every reopen
            # and anchors every descent.
            self._pool.pin((*self._cache_tag, 0), meta_page, PAGE_SIZE)
        meta = self._parse_meta(meta_page)
        self._root = meta[1]
        self._height = meta[2]
        self._num_pages = meta[3]

    # -- construction ------------------------------------------------------

    @classmethod
    def bulk_build(
        cls, path: Path | str, pairs: Iterable[tuple[int, bytes]]
    ) -> "BPlusTree":
        """Create a balanced tree from key-sorted (key, value) pairs.

        Writes a ``<file>.crc`` page-checksum sidecar alongside the tree,
        so every subsequent page read is CRC-verified; point inserts keep
        the sidecar current through the page device.
        """
        path = Path(path)
        pages: list[bytes] = [b"\x00" * PAGE_SIZE]  # meta placeholder
        leaf_fill = PAGE_SIZE - 256  # leave slack for future inserts
        current = _Leaf([], [], _NO_PAGE)
        leaf_entries: list[tuple[int, int]] = []  # (first key, page number)
        previous_key: int | None = None

        def flush_leaf() -> None:
            nonlocal current
            if not current.keys:
                return
            page_number = len(pages)
            if leaf_entries:
                # Fix previous leaf's next pointer.
                prior = _parse(pages[leaf_entries[-1][1]])
                assert isinstance(prior, _Leaf)
                prior.next_leaf = page_number
                pages[leaf_entries[-1][1]] = prior.to_bytes()
            leaf_entries.append((current.keys[0], page_number))
            pages.append(current.to_bytes())
            current = _Leaf([], [], _NO_PAGE)

        for key, value in pairs:
            if len(value) > MAX_VALUE_BYTES:
                raise StorageError(f"value of {len(value)} bytes exceeds limit")
            if previous_key is not None and key <= previous_key:
                raise StorageError("bulk build requires strictly ascending keys")
            previous_key = key
            if current.bytes_used() + _LEAF_ENTRY_OVERHEAD + len(value) > leaf_fill:
                flush_leaf()
            current.keys.append(key)
            current.values.append(value)
        flush_leaf()

        if not leaf_entries:
            # Empty tree: a single empty leaf as root.
            pages.append(_Leaf([], [], _NO_PAGE).to_bytes())
            leaf_entries.append((0, len(pages) - 1))

        # Build internal levels bottom-up.
        level = leaf_entries
        height = 1
        fanout = (PAGE_SIZE - _INTERNAL_HEADER.size - _CHILD.size) // _INTERNAL_ENTRY
        fanout = max(2, fanout - 8)  # slack for future inserts
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            for start in range(0, len(level), fanout):
                group = level[start : start + fanout]
                node = _Internal(
                    keys=[key for key, _ in group[1:]],
                    children=[page for _, page in group],
                )
                page_number = len(pages)
                pages.append(node.to_bytes())
                next_level.append((group[0][0], page_number))
            level = next_level
            height += 1
        root = level[0][1]
        meta = bytearray(PAGE_SIZE)
        _META.pack_into(meta, 0, _MAGIC, root, height, len(pages))
        pages[0] = bytes(meta)
        atomic.write_file(path, b"".join(pages))
        atomic.write_file(
            integrity.sidecar_path(path),
            integrity.encode_page_checksums(
                [integrity.crc32(page) for page in pages]
            ),
        )
        return cls(path)

    # -- page I/O ----------------------------------------------------------

    def _read_page_raw(self, page_number: int) -> bytes:
        if self._page_reader is not None:
            return self._page_reader(page_number)
        if self._pool is not None:
            return self._pool.get_or_load(
                (*self._cache_tag, page_number),
                lambda: self._device.read_page(page_number),
                cost=PAGE_SIZE,
                kind="index_page",
            )
        return self._device.read_page(page_number)

    @staticmethod
    def _parse_meta(data: bytes) -> tuple[int, int, int, int]:
        meta = _META.unpack_from(data, 0)
        if meta[0] != _MAGIC:
            raise StorageError("not a B+tree file (bad magic)")
        return meta

    def _node(self, page_number: int) -> _Leaf | _Internal:
        return _parse(self._read_page_raw(page_number))

    @property
    def device(self) -> PageDevice | None:
        """The counted page device (None with an injected ``page_reader``)."""
        return self._device

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The registry charged for this tree's page I/O (None when an
        injected ``page_reader`` bypasses the device layer)."""
        return self._device.registry if self._device is not None else None

    def io_stats(self) -> dict[str, int]:
        """Bytes read / seeks performed through the tree's device."""
        return self.metrics.io_stats() if self.metrics is not None else {}

    # -- queries ----------------------------------------------------------

    def get(self, key: int) -> bytes | None:
        """Value for ``key`` or None."""
        node = self._node(self._root)
        while isinstance(node, _Internal):
            node = self._node(self._descend(node, key))
        index = _lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        return None

    def _descend(self, node: _Internal, key: int) -> int:
        index = _upper_bound(node.keys, key)
        return node.children[index]

    def scan(
        self, low: int | None = None, high: int | None = None
    ) -> Iterator[tuple[int, bytes]]:
        """Yield (key, value) ascending for low <= key <= high."""
        start = 0 if low is None else low
        node = self._node(self._root)
        while isinstance(node, _Internal):
            node = self._node(self._descend(node, start))
        index = _lower_bound(node.keys, start)
        while True:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None and key > high:
                    return
                yield key, node.values[index]
                index += 1
            if node.next_leaf == _NO_PAGE:
                return
            node = self._node(node.next_leaf)
            if not isinstance(node, _Leaf):
                raise StorageError("leaf chain points at an internal page")
            index = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    @property
    def height(self) -> int:
        """Tree height (1 = root is a leaf)."""
        return self._height

    @property
    def num_pages(self) -> int:
        """Pages in the file, including the meta page."""
        return self._num_pages

    def size_bytes(self) -> int:
        """Total file size."""
        return self._num_pages * PAGE_SIZE

    # -- mutation ----------------------------------------------------------

    def insert(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``.

        Splits full nodes on the way back up; the meta page is rewritten
        when the root changes.  Single-writer only.
        """
        if len(value) > MAX_VALUE_BYTES:
            raise StorageError(f"value of {len(value)} bytes exceeds limit")
        split = self._insert_into(self._root, key, value)
        if split is not None:
            middle_key, new_page = split
            root_node = _Internal(keys=[middle_key], children=[self._root, new_page])
            self._root = self._append_page(root_node.to_bytes())
            self._height += 1
            self._write_meta()

    def _insert_into(
        self, page_number: int, key: int, value: bytes
    ) -> tuple[int, int] | None:
        node = self._node(page_number)
        if isinstance(node, _Leaf):
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
            if node.bytes_used() <= PAGE_SIZE:
                self._write_page(page_number, node.to_bytes())
                return None
            middle = len(node.keys) // 2
            right = _Leaf(node.keys[middle:], node.values[middle:], node.next_leaf)
            right_page = self._append_page(right.to_bytes())
            left = _Leaf(node.keys[:middle], node.values[:middle], right_page)
            self._write_page(page_number, left.to_bytes())
            return right.keys[0], right_page
        child_index = _upper_bound(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        middle_key, new_page = split
        node.keys.insert(child_index, middle_key)
        node.children.insert(child_index + 1, new_page)
        if node.bytes_used() <= PAGE_SIZE:
            self._write_page(page_number, node.to_bytes())
            return None
        middle = len(node.keys) // 2
        up_key = node.keys[middle]
        right_node = _Internal(node.keys[middle + 1 :], node.children[middle + 1 :])
        right_page = self._append_page(right_node.to_bytes())
        left_node = _Internal(node.keys[:middle], node.children[: middle + 1])
        self._write_page(page_number, left_node.to_bytes())
        return up_key, right_page

    def _write_page(self, page_number: int, data: bytes) -> None:
        if self._device is not None:
            self._device.write_page(page_number, data)
        else:
            with open(self._path, "r+b") as handle:
                handle.seek(page_number * PAGE_SIZE)
                handle.write(data)
        if self._pool is not None:
            self._pool.invalidate((*self._cache_tag, page_number))

    def _append_page(self, data: bytes) -> int:
        if self._device is not None:
            self._device.append_page(data)
        else:
            with open(self._path, "ab") as handle:
                handle.write(data)
        page_number = self._num_pages
        self._num_pages += 1
        self._write_meta()
        return page_number

    def _write_meta(self) -> None:
        meta = bytearray(PAGE_SIZE)
        _META.pack_into(meta, 0, _MAGIC, self._root, self._height, self._num_pages)
        self._write_page(0, bytes(meta))
        if self._pool is not None:
            self._pool.pin((*self._cache_tag, 0), bytes(meta), PAGE_SIZE)

    def close(self) -> None:
        """Close the tree's page device (no-op with an injected reader)."""
        if self._device is not None:
            self._device.close()


def _lower_bound(keys: list[int], key: int) -> int:
    low, high = 0, len(keys)
    while low < high:
        middle = (low + high) // 2
        if keys[middle] < key:
            low = middle + 1
        else:
            high = middle
    return low


def _upper_bound(keys: list[int], key: int) -> int:
    low, high = 0, len(keys)
    while low < high:
        middle = (low + high) // 2
        if keys[middle] <= key:
            low = middle + 1
        else:
            high = middle
    return low
