"""Comparison representations from the paper's section 4.

* :class:`~repro.baselines.huffman_rep.HuffmanRepresentation` — "Plain
  Huffman": per-page codes by in-degree.
* :class:`~repro.baselines.link3.Link3Representation` — the Connectivity
  Server's Link Database scheme (Randall et al.).
* :class:`~repro.baselines.relational.RelationalRepresentation` — mini
  relational store (slotted heap + B+trees + buffer pool), standing in for
  the paper's PostgreSQL baseline.
* :class:`~repro.baselines.flatfile.FlatFileRepresentation` —
  uncompressed adjacency lists in plain files.
* :class:`~repro.baselines.base.SNodeRepresentation` — adapter putting the
  S-Node store behind the same interface.
"""

from repro.baselines.base import GraphRepresentation, SNodeRepresentation
from repro.baselines.flatfile import FlatFileRepresentation
from repro.baselines.huffman_rep import HuffmanRepresentation
from repro.baselines.link3 import Link3Representation
from repro.baselines.relational import RelationalRepresentation

__all__ = [
    "GraphRepresentation",
    "SNodeRepresentation",
    "FlatFileRepresentation",
    "HuffmanRepresentation",
    "Link3Representation",
    "RelationalRepresentation",
]
