"""Slotted-page heap file — the storage layer of the mini relational DB.

Classic textbook layout.  Each fixed-size page::

    [u16 slot_count][u16 free_space_offset] [slot dir: (u16 off, u16 len)*]
    ... free space ...                        [records packed from the end]

Records are opaque byte strings addressed by RID = (page_number, slot).
Records larger than a page's usable space are rejected; the relational
layer chunks oversized adjacency lists across several records instead.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.errors import StorageError
from repro.storage.device import PageDevice

PAGE_SIZE = 4096
_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size


class HeapPage:
    """One in-memory slotted page."""

    def __init__(self, data: bytearray | None = None) -> None:
        if data is None:
            self._data = bytearray(PAGE_SIZE)
            self._set_header(0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(f"heap page must be {PAGE_SIZE} bytes")
            self._data = bytearray(data)

    def _header(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self._data, 0)

    def _set_header(self, slots: int, free_offset: int) -> None:
        _HEADER.pack_into(self._data, 0, slots, free_offset)

    def _slot(self, index: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self._data, _HEADER_SIZE + index * _SLOT.size)

    def _set_slot(self, index: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._data, _HEADER_SIZE + index * _SLOT.size, offset, length)

    @property
    def slot_count(self) -> int:
        """Number of slots (including deleted ones)."""
        return self._header()[0]

    def free_space(self) -> int:
        """Bytes available for one more record (incl. its slot entry)."""
        slots, free_offset = self._header()
        directory_end = _HEADER_SIZE + slots * _SLOT.size
        return max(0, free_offset - directory_end - _SLOT.size)

    def insert(self, record: bytes) -> int:
        """Insert ``record``; returns its slot number."""
        if len(record) > self.free_space():
            raise StorageError("record does not fit in heap page")
        slots, free_offset = self._header()
        new_offset = free_offset - len(record)
        self._data[new_offset:free_offset] = record
        self._set_slot(slots, new_offset, len(record))
        self._set_header(slots + 1, new_offset)
        return slots

    def read(self, slot: int) -> bytes:
        """Record bytes at ``slot``."""
        slots, _ = self._header()
        if not 0 <= slot < slots:
            raise StorageError(f"slot {slot} out of range")
        offset, length = self._slot(slot)
        if offset == 0 and length == 0:
            raise StorageError(f"slot {slot} is deleted")
        return bytes(self._data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone ``slot`` (space is not compacted)."""
        slots, _ = self._header()
        if not 0 <= slot < slots:
            raise StorageError(f"slot {slot} out of range")
        self._set_slot(slot, 0, 0)

    def to_bytes(self) -> bytes:
        """Serialized page image."""
        return bytes(self._data)

    @classmethod
    def usable_space(cls) -> int:
        """Largest record a fresh page can hold."""
        return PAGE_SIZE - _HEADER_SIZE - _SLOT.size


class HeapFile:
    """Append-oriented heap file of slotted pages.

    Page I/O flows through a :class:`~repro.storage.device.PageDevice`
    (supply one sharing a metrics registry/buffer pool, as the relational
    layer does, or let the file create a private device); this class only
    tracks the page count and the current fill frontier.
    """

    def __init__(self, path: Path | str, device: PageDevice | None = None) -> None:
        self._path = Path(path)
        if not self._path.exists():
            self._path.write_bytes(b"")
        self._device = (
            device if device is not None else PageDevice(self._path, PAGE_SIZE)
        )
        size = self._path.stat().st_size
        if size % PAGE_SIZE:
            raise StorageError("heap file size is not page-aligned")
        self._num_pages = size // PAGE_SIZE

    @property
    def path(self) -> Path:
        """Backing file path."""
        return self._path

    @property
    def device(self) -> PageDevice:
        """The counted page device carrying this file's I/O."""
        return self._device

    @property
    def num_pages(self) -> int:
        """Pages currently in the file."""
        return self._num_pages

    def read_page(self, page_number: int) -> HeapPage:
        """Read one page image from disk."""
        if not 0 <= page_number < self._num_pages:
            raise StorageError(f"heap page {page_number} out of range")
        return HeapPage(bytearray(self._device.read_page(page_number)))

    def write_page(self, page_number: int, page: HeapPage) -> None:
        """Write one page image back to disk."""
        if not 0 <= page_number < self._num_pages:
            raise StorageError(f"heap page {page_number} out of range")
        self._device.write_page(page_number, page.to_bytes())

    def append_page(self, page: HeapPage) -> int:
        """Append a fresh page; returns its number."""
        self._device.append_page(page.to_bytes())
        self._num_pages += 1
        return self._num_pages - 1

    def size_bytes(self) -> int:
        """Total file size."""
        return self._num_pages * PAGE_SIZE

    def close(self) -> None:
        """Close the page device."""
        self._device.close()
