"""Mini relational database baseline (the paper's PostgreSQL stand-in).

Adjacency lists are rows of a table ``links(page_id, targets)`` stored in
a slotted-page heap file; a B+tree on ``page_id`` and a B+tree domain
index provide the access paths, and all page I/O (heap and index alike)
flows through one shared :class:`repro.storage.bufferpool.BufferPool` —
the same architecture the paper exercises through PostgreSQL with a
bounded shared-buffer setting.  Every seek and byte is metered by the
storage layer's counted devices, so the relational baseline's Table 2 /
Figure 11 numbers use the identical cost model as S-Node's.

Rows larger than a heap page are chunked across several records; the
page-id index stores the full RID list for each page.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Iterator
from pathlib import Path

from repro.baselines.base import GraphRepresentation
from repro.baselines.btree import PAGE_SIZE, BPlusTree
from repro.baselines.heapfile import HeapFile, HeapPage
from repro.errors import GraphError, StorageError
from repro.graph.digraph import Digraph
from repro.storage import integrity
from repro.storage.atomic import BuildTransaction
from repro.storage.bufferpool import BufferPool
from repro.storage.device import PageDevice
from repro.storage.metrics import MetricsRegistry
from repro.webdata.corpus import Repository

DEFAULT_BUFFER_BYTES = 8 * 1024 * 1024

_RID = struct.Struct("<IH")
_RECORD_HEADER = struct.Struct("<IH")  # (page_id, chunk_sequence)

# Leave room for the record header and the slot entry.
_MAX_TARGETS_PER_CHUNK = (HeapPage.usable_space() - _RECORD_HEADER.size - 64) // 4


class RelationalRepresentation(GraphRepresentation):
    """Adjacency lists behind a heap file + B+tree indexes + buffer pool."""

    name = "relational"

    def __init__(
        self,
        repository: Repository,
        root: Path | str,
        graph: Digraph | None = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        graph = graph if graph is not None else repository.graph
        self._num_pages = graph.num_vertices
        self._num_edges = graph.num_edges
        self._metrics = MetricsRegistry()
        self._pool = BufferPool(buffer_bytes, registry=self._metrics)
        self._build(repository, graph)
        self._heap_device = PageDevice(
            self._heap_path, PAGE_SIZE, self._metrics
        )
        self._heap = HeapFile(self._heap_path, device=self._heap_device)
        self._page_index = BPlusTree(
            self._page_index_path,
            device=PageDevice(self._page_index_path, PAGE_SIZE, self._metrics),
            pool=self._pool,
        )
        self._domain_index = BPlusTree(
            self._domain_index_path,
            device=PageDevice(self._domain_index_path, PAGE_SIZE, self._metrics),
            pool=self._pool,
        )
        self._domain_ids = json.loads(self._domain_map_path.read_text())

    # -- paths ---------------------------------------------------------------

    @property
    def _heap_path(self) -> Path:
        return self._root / "links.heap"

    @property
    def _page_index_path(self) -> Path:
        return self._root / "page_id.btree"

    @property
    def _domain_index_path(self) -> Path:
        return self._root / "domain.btree"

    @property
    def _domain_map_path(self) -> Path:
        return self._root / "domains.json"

    # -- build -----------------------------------------------------------------

    def _build(self, repository: Repository, graph: Digraph) -> None:
        """Build heap + indexes atomically (tmp dir, manifest last, rename)."""
        with BuildTransaction(self._root) as transaction:
            self._build_into(transaction, repository, graph)
            transaction.write_manifest(
                {
                    "scheme": self.name,
                    "num_pages": self._num_pages,
                    "num_edges": self._num_edges,
                }
            )
            transaction.commit()

    def _build_into(
        self, transaction: BuildTransaction, repository: Repository, graph: Digraph
    ) -> None:
        heap_path = transaction.path(self._heap_path.name)
        heap = HeapFile(heap_path)
        current = HeapPage()
        current_number: int | None = None
        rid_lists: list[list[tuple[int, int]]] = [[] for _ in range(self._num_pages)]

        def emit(record: bytes) -> tuple[int, int]:
            nonlocal current, current_number
            if len(record) > current.free_space():
                if current_number is None:
                    current_number = heap.append_page(current)
                else:
                    heap.write_page(current_number, current)
                current = HeapPage()
                current_number = heap.append_page(current)
                slot = current.insert(record)
                return current_number, slot
            if current_number is None:
                current_number = heap.append_page(current)
            slot = current.insert(record)
            return current_number, slot

        for page in range(self._num_pages):
            row = [int(t) for t in graph.successors(page)]
            chunks = [
                row[i : i + _MAX_TARGETS_PER_CHUNK]
                for i in range(0, max(len(row), 1), _MAX_TARGETS_PER_CHUNK)
            ]
            for sequence, chunk in enumerate(chunks):
                record = _RECORD_HEADER.pack(page, sequence) + struct.pack(
                    f"<{len(chunk)}I", *chunk
                )
                rid_lists[page].append(emit(record))
        if current_number is not None:
            heap.write_page(current_number, current)
        heap.close()
        transaction.write_file(
            integrity.sidecar_path(heap_path).name,
            integrity.encode_page_checksums(
                integrity.page_checksums_of_file(heap_path, PAGE_SIZE)
            ),
        )
        transaction.register(heap_path.name)

        BPlusTree.bulk_build(
            transaction.path(self._page_index_path.name),
            (
                (page, b"".join(_RID.pack(*rid) for rid in rids))
                for page, rids in enumerate(rid_lists)
            ),
        ).close()

        # Domain index: domain id -> chunked page-id lists.
        domain_pages: dict[str, list[int]] = {}
        for page_object in repository.pages[: self._num_pages]:
            domain_pages.setdefault(page_object.domain, []).append(
                page_object.page_id
            )
        domain_ids = {
            domain: index for index, domain in enumerate(sorted(domain_pages))
        }
        entries: list[tuple[int, bytes]] = []
        chunk_capacity = 200
        for domain, pages in domain_pages.items():
            base = domain_ids[domain] << 16
            for sequence, start in enumerate(range(0, len(pages), chunk_capacity)):
                chunk = pages[start : start + chunk_capacity]
                entries.append(
                    (base | sequence, struct.pack(f"<{len(chunk)}I", *chunk))
                )
        entries.sort(key=lambda kv: kv[0])
        BPlusTree.bulk_build(
            transaction.path(self._domain_index_path.name), iter(entries)
        ).close()
        for index_path in (self._page_index_path, self._domain_index_path):
            transaction.register(index_path.name)
            transaction.register(integrity.sidecar_path(index_path).name)
        transaction.write_file(
            self._domain_map_path.name,
            json.dumps(domain_ids, sort_keys=True).encode(),
        )

    # -- access ------------------------------------------------------------------

    def _read_record(self, rid: tuple[int, int]) -> bytes:
        page_number, slot = rid
        data = self._pool.get_or_load(
            ("heap", page_number),
            lambda: self._heap_device.read_page(page_number),
            cost=PAGE_SIZE,
            kind="heap_page",
        )
        return HeapPage(bytearray(data)).read(slot)

    def out_neighbors(self, page: int) -> list[int]:
        if not 0 <= page < self._num_pages:
            raise GraphError(f"page {page} out of range")
        rid_blob = self._page_index.get(page)
        if rid_blob is None:
            raise StorageError(f"page {page} missing from page-id index")
        row: list[int] = []
        for position in range(0, len(rid_blob), _RID.size):
            rid = _RID.unpack_from(rid_blob, position)
            record = self._read_record(rid)
            count = (len(record) - _RECORD_HEADER.size) // 4
            row.extend(
                struct.unpack_from(f"<{count}I", record, _RECORD_HEADER.size)
            )
        row.sort()
        return row

    def pages_in_domain(self, domain: str) -> list[int]:
        """Domain-index lookup (B+tree range scan over the chunk keys)."""
        domain_id = self._domain_ids.get(domain.lower())
        if domain_id is None:
            return []
        base = domain_id << 16
        pages: list[int] = []
        for _key, blob in self._domain_index.scan(base, base | 0xFFFF):
            pages.extend(struct.unpack(f"<{len(blob) // 4}I", blob))
        return pages

    def iterate_all(self) -> Iterator[tuple[int, list[int]]]:
        for page, rid_blob in self._page_index.scan():
            row: list[int] = []
            for position in range(0, len(rid_blob), _RID.size):
                rid = _RID.unpack_from(rid_blob, position)
                record = self._read_record(rid)
                count = (len(record) - _RECORD_HEADER.size) // 4
                row.extend(
                    struct.unpack_from(f"<{count}I", record, _RECORD_HEADER.size)
                )
            row.sort()
            yield page, row

    # -- accounting -----------------------------------------------------------

    def size_bytes(self) -> int:
        total = (
            self._heap.size_bytes()
            + self._page_index.size_bytes()
            + self._domain_index.size_bytes()
        )
        # Page-checksum sidecars are part of the stored representation.
        for path in (self._heap_path, self._page_index_path, self._domain_index_path):
            sidecar = integrity.sidecar_path(path)
            if sidecar.exists():
                total += sidecar.stat().st_size
        return total

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def metrics(self) -> MetricsRegistry:
        """Shared registry metering heap and index I/O alike."""
        return self._metrics

    def _devices(self) -> tuple[PageDevice, ...]:
        return (
            self._heap_device,
            self._page_index.device,
            self._domain_index.device,
        )

    def drop_caches(self) -> None:
        self._pool.clear(record=False)
        for device in self._devices():
            device.forget_position()

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        """Resize the buffer pool (memory-bound experiments)."""
        self._pool.set_buffer_bytes(buffer_bytes)
        for device in self._devices():
            device.forget_position()

    def buffer_stats(self) -> dict[str, int]:
        """Buffer-pool counters."""
        return self._pool.stats()

    def close(self) -> None:
        for device in self._devices():
            device.close()
