"""Uncompressed flat-file representation (the paper's baseline scheme).

Adjacency lists are stored verbatim as 4-byte little-endian integers in a
single data file; an in-memory offset array (the page-ID index) gives the
byte range of each list.  Every ``out_neighbors`` call is a fresh
seek+read through a :class:`repro.storage.device.CountedFile` —
deliberately naive, as in the paper, where this scheme is "consistently
the worst, often 15 times slower than S-Node".
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from pathlib import Path

from repro.baselines.base import GraphRepresentation
from repro.errors import GraphError
from repro.graph.digraph import Digraph
from repro.storage.atomic import BuildTransaction
from repro.storage.device import CountedFile


class FlatFileRepresentation(GraphRepresentation):
    """Plain uncompressed adjacency lists on disk."""

    name = "flat-file"

    def __init__(self, graph: Digraph, root: Path | str) -> None:
        self._root = Path(root)
        self._num_pages = graph.num_vertices
        self._num_edges = graph.num_edges
        offsets = [0]
        blob = bytearray()
        for page in range(self._num_pages):
            row = graph.successors(page)
            blob.extend(struct.pack(f"<{len(row)}I", *(int(t) for t in row)))
            offsets.append(offsets[-1] + 4 * len(row))
        with BuildTransaction(self._root) as transaction:
            transaction.write_file(self._path.name, bytes(blob))
            transaction.write_manifest(
                {
                    "scheme": self.name,
                    "num_pages": self._num_pages,
                    "num_edges": self._num_edges,
                }
            )
            transaction.commit()
        self._offsets = offsets
        self._file = CountedFile(self._path, registry=self.metrics)

    @property
    def _path(self) -> Path:
        return self._root / "adjacency.dat"

    def out_neighbors(self, page: int) -> list[int]:
        if not 0 <= page < self._num_pages:
            raise GraphError(f"page {page} out of range")
        start = self._offsets[page]
        data = self._file.read_at(start, self._offsets[page + 1] - start)
        return list(struct.unpack(f"<{len(data) // 4}I", data))

    def iterate_all(self) -> Iterator[tuple[int, list[int]]]:
        for page in range(self._num_pages):
            yield page, self.out_neighbors(page)

    def size_bytes(self) -> int:
        """Data file plus the 8-byte-per-page offset index."""
        return self._offsets[-1] + 8 * (self._num_pages + 1)

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def drop_caches(self) -> None:
        self._file.forget_position()

    def close(self) -> None:
        self._file.close()
