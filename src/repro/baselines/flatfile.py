"""Uncompressed flat-file representation (the paper's baseline scheme).

Adjacency lists are stored verbatim as 4-byte little-endian integers in a
single data file; an in-memory offset array (the page-ID index) gives the
byte range of each list.  Every ``out_neighbors`` call is a fresh
seek+read — deliberately naive, as in the paper, where this scheme is
"consistently the worst, often 15 times slower than S-Node".
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from pathlib import Path

from repro.baselines.base import GraphRepresentation
from repro.errors import GraphError, StorageError
from repro.graph.digraph import Digraph

_ENTRY = struct.Struct("<I")


class FlatFileRepresentation(GraphRepresentation):
    """Plain uncompressed adjacency lists on disk."""

    name = "flat-file"

    def __init__(self, graph: Digraph, root: Path | str) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._num_pages = graph.num_vertices
        self._num_edges = graph.num_edges
        offsets = [0]
        with open(self._path, "wb") as handle:
            for page in range(self._num_pages):
                row = graph.successors(page)
                handle.write(struct.pack(f"<{len(row)}I", *(int(t) for t in row)))
                offsets.append(offsets[-1] + 4 * len(row))
        self._offsets = offsets
        self._handle = open(self._path, "rb")
        self.bytes_read = 0
        self.disk_seeks = 0
        self._last_read_end = -1

    @property
    def _path(self) -> Path:
        return self._root / "adjacency.dat"

    def out_neighbors(self, page: int) -> list[int]:
        if not 0 <= page < self._num_pages:
            raise GraphError(f"page {page} out of range")
        start = self._offsets[page]
        end = self._offsets[page + 1]
        if self._last_read_end != start:
            self.disk_seeks += 1
        self._handle.seek(start)
        data = self._handle.read(end - start)
        if len(data) != end - start:
            raise StorageError("short read from flat adjacency file")
        self._last_read_end = end
        self.bytes_read += len(data)
        return list(struct.unpack(f"<{len(data) // 4}I", data))

    def iterate_all(self) -> Iterator[tuple[int, list[int]]]:
        for page in range(self._num_pages):
            yield page, self.out_neighbors(page)

    def size_bytes(self) -> int:
        """Data file plus the 8-byte-per-page offset index."""
        return self._offsets[-1] + 8 * (self._num_pages + 1)

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def reset_io_stats(self) -> None:
        self.bytes_read = 0
        self.disk_seeks = 0

    def io_stats(self) -> dict[str, int]:
        return {"bytes_read": self.bytes_read, "disk_seeks": self.disk_seeks}

    def drop_caches(self) -> None:
        self._last_read_end = -1

    def close(self) -> None:
        self._handle.close()
