"""Common interface every Web-graph representation implements.

Queries and experiments are written once against
:class:`GraphRepresentation`; each scheme (S-Node, Huffman, Link3,
relational, flat file) plugs in behind it.  All public methods speak
*repository* page ids (crawl order) — schemes with internal renumberings
(S-Node, Link3) translate at the boundary, exactly as their real
counterparts translate through URL<->id maps.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator

from repro.storage.metrics import MetricsRegistry


class GraphRepresentation(abc.ABC):
    """Adjacency-list access to one stored Web graph."""

    #: Human-readable scheme name used in experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def out_neighbors(self, page: int) -> list[int]:
        """Sorted adjacency list of ``page`` (repository ids)."""

    def out_neighbors_many(self, pages: Iterable[int]) -> dict[int, list[int]]:
        """Adjacency lists of several pages (override to batch I/O)."""
        return {page: self.out_neighbors(page) for page in pages}

    @abc.abstractmethod
    def iterate_all(self) -> Iterator[tuple[int, list[int]]]:
        """Yield (page, adjacency) over all pages in the scheme's natural
        storage order — the sequential-access path of Table 2."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total bytes of the representation (payload + decode metadata)."""

    @property
    @abc.abstractmethod
    def num_pages(self) -> int:
        """Number of pages represented."""

    @property
    @abc.abstractmethod
    def num_edges(self) -> int:
        """Number of edges represented."""

    def bits_per_edge(self) -> float:
        """Table 1 metric."""
        if self.num_edges == 0:
            return 0.0
        return self.size_bytes() * 8.0 / self.num_edges

    # -- shared storage-engine protocol -------------------------------------
    #
    # Every scheme owns (or shares) a repro.storage.metrics.MetricsRegistry;
    # disk-backed schemes charge their devices and buffer pool against it,
    # purely in-memory schemes simply report an empty one.  Experiments are
    # written against these five methods only — no per-scheme branches.

    @property
    def metrics(self) -> MetricsRegistry:
        """The scheme's metrics registry (created empty on first use)."""
        registry = getattr(self, "_metrics", None)
        if registry is None:
            registry = self._metrics = MetricsRegistry()
        return registry

    def reset_io_stats(self) -> None:
        """Zero I/O counters before a measured run."""
        self.metrics.reset()

    def io_stats(self) -> dict[str, int]:
        """All metered counters since the last reset (``bytes_read``,
        ``disk_seeks``, buffer hits/misses/evictions, loads by kind)."""
        return self.metrics.io_stats()

    def drop_caches(self) -> None:
        """Forget buffered data so the next access is cold."""

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        """Rebound the scheme's buffer budget (Figure 12 sweep protocol).

        No-op for schemes without a buffer manager (flat file, in-memory
        Huffman): their cost model has nothing to rebound.
        """

    def set_on_corruption(self, mode: str) -> None:
        """Pick the corruption policy (``"raise"`` or ``"degrade"``).

        Only schemes with region-granular checksums and quarantine support
        (S-Node) can degrade; for the rest a corrupt page/block always
        raises, whatever the mode — this default is a no-op.
        """

    @property
    def degraded_reads(self) -> int:
        """Answers served from quarantined regions (0 unless degrading)."""
        return self.metrics.get("degraded_reads")

    def close(self) -> None:
        """Release file handles."""

    def __enter__(self) -> "GraphRepresentation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SNodeRepresentation(GraphRepresentation):
    """Adapter exposing an :class:`~repro.snode.build.SNodeBuild` through
    the common interface (translating new ids back to repository ids)."""

    name = "s-node"

    def __init__(self, build) -> None:
        self._build = build
        self._store = build.store
        self._old_to_new = build.numbering.old_to_new
        self._new_to_old = build.numbering.new_to_old
        #: Optional :class:`~repro.snode.delta.DeltaOverlay` of pending
        #: edge mutations, merged into every row *after* the new->old id
        #: translation (the overlay speaks repository ids).
        self._overlay = None

    @classmethod
    def open(
        cls,
        root,
        buffer_bytes: int | None = None,
        stripes: int = 1,
        on_corruption: str = "raise",
    ) -> "SNodeRepresentation":
        """Open a committed build directory without rebuilding.

        The serving-side constructor (hot store swap, corrupt-store
        fixtures): everything comes off disk via
        :func:`~repro.snode.build.open_snode`, so the logical model is
        absent and model-dependent accessors (``num_edges``) raise.
        """
        from repro.snode.build import open_snode
        from repro.snode.store import DEFAULT_BUFFER_BYTES

        return cls(
            open_snode(
                root,
                buffer_bytes=(
                    DEFAULT_BUFFER_BYTES if buffer_bytes is None else buffer_bytes
                ),
                stripes=stripes,
                on_corruption=on_corruption,
            )
        )

    @property
    def store(self):
        """The underlying :class:`~repro.snode.store.SNodeStore`."""
        return self._store

    @property
    def build(self):
        """The underlying :class:`~repro.snode.build.SNodeBuild`."""
        return self._build

    @property
    def overlay(self):
        """The attached delta overlay, if the store is serving mutably."""
        return self._overlay

    def attach_overlay(self, overlay) -> None:
        """Serve ``overlay``'s pending mutations merged into every row.

        Sessions stamped out by :meth:`session` consult the parent's
        overlay dynamically, so attaching before (or between) sessions
        is enough — no per-session re-plumbing.  Pass ``None`` to go
        back to serving the committed build verbatim.
        """
        self._overlay = overlay

    def _merged(self, page: int, row: list[int], registry) -> list[int]:
        overlay = self._overlay
        if overlay is None:
            return row
        return overlay.merge(page, row, registry)

    def out_neighbors(self, page: int) -> list[int]:
        new_page = self._old_to_new[page]
        row = self._store.out_neighbors(new_page)
        return self._merged(
            page, sorted(self._new_to_old[t] for t in row), self.metrics
        )

    def out_neighbors_many(self, pages) -> dict[int, list[int]]:
        translated = {self._old_to_new[p]: p for p in pages}
        rows = self._store.out_neighbors_many(list(translated))
        return {
            translated[new_page]: self._merged(
                translated[new_page],
                sorted(self._new_to_old[t] for t in row),
                self.metrics,
            )
            for new_page, row in rows.items()
        }

    def iterate_all(self):
        for new_page, row in self._store.iterate_all():
            page = self._new_to_old[new_page]
            yield page, self._merged(
                page, sorted(self._new_to_old[t] for t in row), self.metrics
            )

    def size_bytes(self) -> int:
        from repro.snode.encode import supernode_graph_size_bytes

        manifest = self._store.manifest
        if self._build.model is None:
            # Opened from disk: the manifest records the encoded
            # supernode-graph size, so no model is needed.
            supernode_bytes = manifest["supernode_graph_bytes"]
        else:
            supernode_bytes = supernode_graph_size_bytes(self._build.model)
        return (
            manifest["payload_bytes"]
            + supernode_bytes
            + manifest["pageid_bytes"]
        )

    @property
    def num_pages(self) -> int:
        return self._store.num_pages

    @property
    def num_edges(self) -> int:
        return self._build.total_edges()

    @property
    def metrics(self) -> MetricsRegistry:
        return self._store.metrics

    def io_stats(self) -> dict[str, int]:
        stats = self._store.stats
        return {
            **self._store.metrics.io_stats(),
            # Historical aliases, derived from the same registry.
            "graphs_loaded": stats.graphs_loaded,
            "graphs_evicted": stats.graphs_evicted,
        }

    def drop_caches(self) -> None:
        self._store.drop_buffers()

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        self._store.set_buffer_bytes(buffer_bytes)

    def set_on_corruption(self, mode: str) -> None:
        self._store.set_on_corruption(mode)

    @property
    def degraded_reads(self) -> int:
        return self._store.degraded_reads

    def session(self, label: str | None = None) -> "SNodeSessionRepresentation":
        """A per-client view sharing this representation's store.

        The returned representation reads through a
        :class:`~repro.snode.store.ReadSession`: same buffer pool, same
        on-disk files, but its ``metrics`` / ``io_stats()`` cover only
        that client's reads.  Close it to fold the client's numbers back
        into the shared store.
        """
        return SNodeSessionRepresentation(self, self._store.session(label=label))

    def close(self) -> None:
        self._store.close()


class SNodeSessionRepresentation(GraphRepresentation):
    """One client's :class:`SNodeRepresentation` view over a shared store.

    Wraps a :class:`~repro.snode.store.ReadSession`: adjacency reads hit
    the shared buffer pool but charge the session's own registry, so a
    query daemon can hand each connection its own representation (and its
    own :class:`~repro.query.engine.QueryEngine`) while every byte of
    shared cache is reused across clients.  ``close()`` ends the session
    — the shared store stays open.
    """

    name = "s-node"

    def __init__(self, parent: SNodeRepresentation, session) -> None:
        self._parent = parent
        self._session = session
        self._old_to_new = parent._old_to_new
        self._new_to_old = parent._new_to_old

    @property
    def session(self):
        """The underlying :class:`~repro.snode.store.ReadSession`."""
        return self._session

    @property
    def store(self):
        """The shared :class:`~repro.snode.store.SNodeStore`."""
        return self._session.store

    def _merged(self, page: int, row: list[int]) -> list[int]:
        # The overlay is looked up on the parent per call: a mutation
        # enabled after this session opened is still served, and the
        # merge cost lands on *this* session's registry — per-request
        # attribution stays exact in the daemon.
        overlay = self._parent._overlay
        if overlay is None:
            return row
        return overlay.merge(page, row, self._session.registry)

    def out_neighbors(self, page: int) -> list[int]:
        new_page = self._old_to_new[page]
        row = self._session.out_neighbors(new_page)
        return self._merged(page, sorted(self._new_to_old[t] for t in row))

    def out_neighbors_many(self, pages) -> dict[int, list[int]]:
        translated = {self._old_to_new[p]: p for p in pages}
        rows = self._session.out_neighbors_many(list(translated))
        return {
            translated[new_page]: self._merged(
                translated[new_page],
                sorted(self._new_to_old[t] for t in row),
            )
            for new_page, row in rows.items()
        }

    def iterate_all(self):
        return self._parent.iterate_all()

    def size_bytes(self) -> int:
        return self._parent.size_bytes()

    @property
    def num_pages(self) -> int:
        return self._parent.num_pages

    @property
    def num_edges(self) -> int:
        return self._parent.num_edges

    @property
    def metrics(self) -> MetricsRegistry:
        return self._session.registry

    def io_stats(self) -> dict[str, int]:
        return self._session.io_stats()

    def drop_caches(self) -> None:
        # The cache is shared; a per-client drop would be another client's
        # surprise cold read.  Sessions therefore never drop buffers.
        pass

    def set_on_corruption(self, mode: str) -> None:
        self.store.set_on_corruption(mode)

    @property
    def degraded_reads(self) -> int:
        return self._session.registry.get("degraded_reads")

    def close(self) -> None:
        self._session.close()
