"""K-means over binary vectors, with the paper's time-bound semantics.

Clustered split (paper section 3.2) runs k-means on per-page bit vectors.
The paper places "an upper bound on the running time of the algorithm and
aborts the execution if this bound is exceeded", retries with k+2, and
gives up after a fixed number of attempts.  This module supplies exactly
that contract: :func:`kmeans_binary` either converges within its budget or
reports a timeout.

Distances are squared Euclidean on 0/1 vectors (== Hamming distance), and
centroids are real-valued means, i.e. standard Lloyd iterations.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run."""

    labels: np.ndarray  # shape (n,), values in [0, k)
    converged: bool  # False if the time bound or iteration cap hit first
    iterations: int
    inertia: float  # sum of squared distances to assigned centroids


def _initial_centroids(
    vectors: np.ndarray, k: int, rng: random.Random
) -> np.ndarray:
    """K-means++-style seeding (distance-weighted), deterministic via rng."""
    n = len(vectors)
    first = rng.randrange(n)
    centroids = [vectors[first].astype(np.float64)]
    distances = np.full(n, np.inf)
    for _ in range(1, k):
        diff = vectors - centroids[-1]
        distances = np.minimum(distances, np.einsum("ij,ij->i", diff, diff))
        total = float(distances.sum())
        if total <= 0.0:
            # All points coincide with chosen centroids; pad with random picks.
            centroids.append(vectors[rng.randrange(n)].astype(np.float64))
            continue
        threshold = rng.random() * total
        cumulative = np.cumsum(distances)
        index = int(np.searchsorted(cumulative, threshold))
        index = min(index, n - 1)
        centroids.append(vectors[index].astype(np.float64))
    return np.stack(centroids)


def kmeans_binary(
    vectors: np.ndarray,
    k: int,
    rng: random.Random,
    time_bound_seconds: float = 1.0,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Lloyd's algorithm on 0/1 vectors with a wall-clock bound.

    Parameters mirror the paper: if the bound elapses before the assignment
    stabilizes the run reports ``converged=False`` and the caller escalates
    (k += 2) or aborts the split.
    """
    if vectors.ndim != 2:
        raise PartitionError("k-means expects a 2-D vector array")
    n, _ = vectors.shape
    if not 1 <= k <= n:
        raise PartitionError(f"k={k} invalid for {n} vectors")
    data = vectors.astype(np.float64, copy=False)
    centroids = _initial_centroids(data, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    deadline = time.monotonic() + time_bound_seconds
    converged = False
    iterations = 0
    inertia = float("inf")
    for iterations in range(1, max_iterations + 1):
        # Assignment step: squared distances to each centroid.
        squared = (
            np.einsum("ij,ij->i", data, data)[:, None]
            - 2.0 * data @ centroids.T
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        )
        new_labels = np.argmin(squared, axis=1)
        new_inertia = float(squared[np.arange(n), new_labels].sum())
        # Update step: recompute means; reseed empty clusters on the
        # farthest points so k stays honest.
        new_centroids = np.zeros_like(centroids)
        counts = np.bincount(new_labels, minlength=k).astype(np.float64)
        np.add.at(new_centroids, new_labels, data)
        nonempty = counts > 0
        new_centroids[nonempty] /= counts[nonempty, None]
        if not nonempty.all():
            farthest = np.argsort(-squared[np.arange(n), new_labels])
            replacement = 0
            for cluster in np.flatnonzero(~nonempty):
                new_centroids[cluster] = data[farthest[replacement % n]]
                replacement += 1
        stable = bool(np.array_equal(new_labels, labels)) and iterations > 1
        improved = inertia - new_inertia
        labels = new_labels
        centroids = new_centroids
        inertia = new_inertia
        if stable or (0 <= improved < tolerance and iterations > 1):
            converged = True
            break
        if time.monotonic() > deadline:
            break
    return KMeansResult(
        labels=labels, converged=converged, iterations=iterations, inertia=inertia
    )
