"""Partitioning of the page set (paper section 3.2).

The pipeline: start from the domain partition P0, then repeatedly refine a
randomly chosen element with URL split (up to 3 directory levels) and after
that with clustered split (k-means over supernode-adjacency bit vectors),
until clustered split has been aborted ``abortmax`` consecutive times.
"""

from repro.partition.partition import Partition
from repro.partition.kmeans import KMeansResult, kmeans_binary
from repro.partition.refine import RefinementConfig, RefinementResult, refine_partition

__all__ = [
    "Partition",
    "KMeansResult",
    "kmeans_binary",
    "RefinementConfig",
    "RefinementResult",
    "refine_partition",
]
