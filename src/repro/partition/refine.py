"""Iterative partition refinement (paper section 3.2).

Drives the sequence P0 -> P1 -> ... -> Pf:

* P0 groups pages by registered domain (top two DNS levels).
* Each iteration picks an element — at random by default; the paper reports
  the "largest-first" policy performs identically, and we keep it available
  for the ablation experiment.
* Elements still splittable by URL prefix are refined with URL split; once
  a 3-level-deep prefix has been used (or a split stops discriminating) the
  element transitions to clustered split.
* Clustered split failures ("aborts") are counted; refinement stops after
  ``abortmax`` *consecutive* aborts, where abortmax is a fixed fraction
  (paper: 6 %) of the current number of elements.

The driver keeps mutable internal state (element list + page assignment)
so each refinement step costs time proportional to the split element, not
to the whole repository, and materializes an immutable
:class:`~repro.partition.partition.Partition` only at the end.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.graph.digraph import Digraph
from repro.obs import progress as obs_progress
from repro.obs import tracing
from repro.partition.clustered_split import ClusteredSplitConfig, clustered_split
from repro.partition.partition import Element, Partition
from repro.partition.url_split import mark_url_exhausted, url_split
from repro.webdata.corpus import Repository


@dataclass(frozen=True)
class RefinementConfig:
    """Parameters of the refinement loop."""

    seed: int = 42
    abort_fraction: float = 0.06  # paper's 6 % abortmax
    # The paper's partitions have ~10^5 elements, so 6 % is thousands of
    # consecutive draws and the stop estimate is accurate.  At our scaled
    # sizes 6 % of the element count would be single digits and the
    # estimator far too trigger-happy, so a floor keeps it honest.
    min_abortmax: int = 48
    max_iterations: int = 200_000
    policy: str = "random"  # "random" | "largest"
    # Elements below this size are never split further (scale adaptation —
    # keeps supernodes coarse enough for reference encoding to have pages
    # with similar adjacency lists to exploit).  The defaults are the
    # calibrated values all experiments use; shrink them proportionally for
    # sub-thousand-page repositories.
    min_element_size: int = 512
    # URL-split groups below this floor are coalesced with their
    # lexicographic neighbours (see url_split's scale-adaptation note).
    min_url_group_size: int = 128
    clustered: ClusteredSplitConfig = field(default_factory=ClusteredSplitConfig)


@dataclass
class RefinementResult:
    """Final partition plus statistics the experiments report."""

    partition: Partition
    iterations: int = 0
    url_splits: int = 0
    clustered_splits: int = 0
    clustered_aborts: int = 0
    stop_reason: str = ""

    @property
    def num_elements(self) -> int:
        """Size of the final partition."""
        return self.partition.num_elements

    def to_artifact(self) -> bytes:
        """Serialize to a stage-checkpoint artifact (deterministic bytes).

        Everything is flattened to plain tuples before pickling, so the
        artifact depends only on the refinement outcome — pickling the
        same result twice yields identical bytes, which is what lets the
        pipeline's checkpoint registry verify it by SHA-256.
        """
        elements = tuple(
            (e.pages, e.domain, e.url_depth, e.url_split_exhausted)
            for e in self.partition.elements()
        )
        state = (
            self.partition.num_pages,
            elements,
            self.iterations,
            self.url_splits,
            self.clustered_splits,
            self.clustered_aborts,
            self.stop_reason,
        )
        return pickle.dumps(state, protocol=4)

    @classmethod
    def from_artifact(cls, data: bytes) -> "RefinementResult":
        """Inverse of :meth:`to_artifact`."""
        (
            num_pages,
            elements,
            iterations,
            url_splits,
            clustered_splits,
            clustered_aborts,
            stop_reason,
        ) = pickle.loads(data)
        partition = Partition(
            num_pages,
            [
                Element(
                    pages=tuple(pages),
                    domain=domain,
                    url_depth=url_depth,
                    url_split_exhausted=exhausted,
                )
                for pages, domain, url_depth, exhausted in elements
            ],
        )
        return cls(
            partition=partition,
            iterations=iterations,
            url_splits=url_splits,
            clustered_splits=clustered_splits,
            clustered_aborts=clustered_aborts,
            stop_reason=stop_reason,
        )


class _RefinementState:
    """Mutable partition: element list + dense page assignment."""

    def __init__(self, elements: list[Element], num_pages: int) -> None:
        self.elements = elements
        self.assignment = [0] * num_pages
        for index, element in enumerate(elements):
            for page in element.pages:
                self.assignment[page] = index

    def replace(self, index: int, children: list[Element]) -> None:
        """Substitute ``children`` for element ``index`` in place."""
        if not children:
            raise PartitionError("cannot replace an element with nothing")
        self.elements[index] = children[0]
        for page in children[0].pages:
            self.assignment[page] = index
        for child in children[1:]:
            child_index = len(self.elements)
            self.elements.append(child)
            for page in child.pages:
                self.assignment[page] = child_index

    def update(self, index: int, element: Element) -> None:
        """Replace element metadata without moving pages."""
        self.elements[index] = element


def refine_partition(
    repository: Repository,
    config: RefinementConfig | None = None,
    initial: Partition | None = None,
    progress=None,
) -> RefinementResult:
    """Run iterative refinement to completion and return Pf with stats.

    Each URL split and clustered split runs inside a tracing span
    (``refine.url_split`` / ``refine.clustered_split``) on the currently
    activated tracer, so a traced build attributes refinement time and
    I/O counters to the two phases; ``progress`` (optional
    :class:`~repro.obs.progress.ProgressReporter`) gets one throttled
    update per iteration.
    """
    progress = obs_progress.ensure(progress)
    config = config or RefinementConfig()
    if config.policy not in ("random", "largest"):
        raise PartitionError(f"unknown policy {config.policy!r}")
    rng = random.Random(config.seed)
    graph: Digraph = repository.graph
    if initial is None:
        with tracing.span("refine.initial_partition", pages=repository.num_pages):
            initial = Partition.by_domain([p.domain for p in repository.pages])
    state = _RefinementState(initial.elements(), repository.num_pages)
    result = RefinementResult(partition=initial)
    progress.start_phase("refine", unit="iterations")

    consecutive_aborts = 0
    # Elements known to be unsplittable by clustered split; retrying them
    # is pointless, but per the paper they still participate in the random
    # draw (the stopping criterion is exactly "a random sample of abortmax
    # elements none of which can be split").
    dead: set[int] = set()

    while result.iterations < config.max_iterations:
        abortmax = max(
            config.min_abortmax,
            int(config.abort_fraction * len(state.elements)),
        )
        if consecutive_aborts >= abortmax:
            result.stop_reason = (
                f"{consecutive_aborts} consecutive clustered-split aborts "
                f"(abortmax={abortmax})"
            )
            break
        if len(dead) >= len(state.elements):
            result.stop_reason = "every element unsplittable"
            break
        index = _pick_element(state, rng, config.policy)
        element = state.elements[index]
        result.iterations += 1
        progress.update(detail=f"{len(state.elements)} elements")

        if len(element.pages) < config.min_element_size:
            dead.add(index)
            consecutive_aborts += 1
            result.clustered_aborts += 1
            continue

        if not element.url_split_exhausted:
            with tracing.span(
                "refine.url_split", element=index, size=len(element.pages)
            ):
                children = url_split(
                    element, _url_array(repository), config.min_url_group_size
                )
            if children is not None:
                state.replace(index, children)
                dead.discard(index)
                result.url_splits += 1
                consecutive_aborts = 0
            else:
                # Prefix no longer discriminates: move to clustered split
                # (does not count as a clustered abort).
                state.update(index, mark_url_exhausted(element))
            continue

        if index in dead:
            consecutive_aborts += 1
            result.clustered_aborts += 1
            continue

        with tracing.span(
            "refine.clustered_split", element=index, size=len(element.pages)
        ):
            children = clustered_split(
                element, graph, state.assignment, index, rng, config.clustered
            )
        if children is None:
            dead.add(index)
            consecutive_aborts += 1
            result.clustered_aborts += 1
        else:
            state.replace(index, children)
            result.clustered_splits += 1
            consecutive_aborts = 0
    else:
        result.stop_reason = "iteration cap reached"
    progress.finish_phase()

    if not result.stop_reason:
        result.stop_reason = result.stop_reason or "converged"
    result.partition = Partition(repository.num_pages, state.elements)
    return result


def _pick_element(
    state: _RefinementState, rng: random.Random, policy: str
) -> int:
    if policy == "largest":
        return max(
            range(len(state.elements)), key=lambda i: len(state.elements[i].pages)
        )
    return rng.randrange(len(state.elements))


_URL_CACHE: dict[int, list[str]] = {}


def _url_array(repository: Repository) -> list[str]:
    """Page-id -> URL list, cached per repository object."""
    key = id(repository)
    cached = _URL_CACHE.get(key)
    if cached is None or len(cached) != repository.num_pages:
        cached = [page.url for page in repository.pages]
        _URL_CACHE.clear()  # keep at most one repository's URLs alive
        _URL_CACHE[key] = cached
    return cached
