"""Partition data type with refinement bookkeeping.

A :class:`Partition` is a family of disjoint, non-empty page sets covering
``0..n-1``.  Elements carry the metadata the refinement driver needs:

* ``domain`` — every page of an element shares it (Property 2 is enforced
  structurally: P0 groups by domain and refinement only ever subdivides);
* ``url_depth`` — how many directory levels of URL prefix produced this
  element (URL split uses a prefix one level longer; depth >= 3 switches
  the element to clustered split);
* ``url_split_exhausted`` — URL split could not subdivide further.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from repro.errors import PartitionError


@dataclass(frozen=True)
class Element:
    """One element (future supernode): an immutable set of page ids."""

    pages: tuple[int, ...]
    domain: str
    url_depth: int = 0
    url_split_exhausted: bool = False

    def __post_init__(self) -> None:
        if not self.pages:
            raise PartitionError("partition element cannot be empty")
        if list(self.pages) != sorted(set(self.pages)):
            raise PartitionError("element pages must be sorted and unique")

    def __len__(self) -> int:
        return len(self.pages)


class Partition:
    """A partition of pages ``0..n-1`` supporting element replacement."""

    def __init__(self, num_pages: int, elements: Sequence[Element]) -> None:
        self._num_pages = num_pages
        self._elements: list[Element] = list(elements)
        self._validate()
        self._rebuild_index()

    def _validate(self) -> None:
        seen: set[int] = set()
        total = 0
        for element in self._elements:
            for page in element.pages:
                if not 0 <= page < self._num_pages:
                    raise PartitionError(f"page {page} out of range")
            total += len(element.pages)
            seen.update(element.pages)
        if total != len(seen):
            raise PartitionError("partition elements overlap")
        if len(seen) != self._num_pages:
            raise PartitionError(
                f"partition covers {len(seen)} of {self._num_pages} pages"
            )

    def _rebuild_index(self) -> None:
        self._element_of = [0] * self._num_pages
        for index, element in enumerate(self._elements):
            for page in element.pages:
                self._element_of[page] = index

    # -- accessors -------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of pages partitioned."""
        return self._num_pages

    @property
    def num_elements(self) -> int:
        """Number of elements (future supernodes)."""
        return len(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def element(self, index: int) -> Element:
        """Element by index."""
        return self._elements[index]

    def elements(self) -> list[Element]:
        """All elements (shallow copy of the list)."""
        return list(self._elements)

    def element_of(self, page: int) -> int:
        """Index of the element containing ``page``."""
        if not 0 <= page < self._num_pages:
            raise PartitionError(f"page {page} out of range")
        return self._element_of[page]

    def assignment(self) -> list[int]:
        """Dense page -> element-index array."""
        return list(self._element_of)

    def sizes(self) -> list[int]:
        """Element sizes, in element order."""
        return [len(e) for e in self._elements]

    # -- refinement -------------------------------------------------------------

    def replace_element(self, index: int, pieces: Sequence[Element]) -> "Partition":
        """Return a new partition with element ``index`` replaced by ``pieces``.

        This is exactly the paper's refinement step: P_{i+1} keeps every
        other element and substitutes {A_1..A_m} for N_ij.  The pieces must
        exactly re-cover the replaced element.
        """
        old = self._elements[index]
        covered = sorted(page for piece in pieces for page in piece.pages)
        if covered != list(old.pages):
            raise PartitionError("pieces do not exactly cover the split element")
        new_elements = (
            self._elements[:index] + list(pieces) + self._elements[index + 1 :]
        )
        return Partition(self._num_pages, new_elements)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def trivial(cls, num_pages: int, domain: str = "") -> "Partition":
        """Single-element partition containing every page."""
        return cls(
            num_pages,
            [Element(pages=tuple(range(num_pages)), domain=domain)],
        )

    @classmethod
    def from_assignment(
        cls,
        assignment: Sequence[int],
        domains: Sequence[str] | None = None,
    ) -> "Partition":
        """Build from a page -> group-label array (labels need not be dense)."""
        groups: dict[int, list[int]] = {}
        for page, label in enumerate(assignment):
            groups.setdefault(int(label), []).append(page)
        elements = []
        for label in sorted(groups):
            pages = tuple(groups[label])
            domain = domains[pages[0]] if domains is not None else ""
            elements.append(Element(pages=pages, domain=domain))
        return cls(len(assignment), elements)

    @classmethod
    def by_domain(cls, page_domains: Sequence[str]) -> "Partition":
        """The paper's initial partition P0: group pages by registered domain."""
        groups: dict[str, list[int]] = {}
        for page, domain in enumerate(page_domains):
            groups.setdefault(domain, []).append(page)
        elements = [
            Element(pages=tuple(pages), domain=domain)
            for domain, pages in sorted(groups.items())
        ]
        return cls(len(page_domains), elements)


def split_element(
    element: Element,
    groups: Iterable[Sequence[int]],
    url_depth: int | None = None,
    url_split_exhausted: bool | None = None,
) -> list[Element]:
    """Turn grouped page lists into child elements inheriting metadata."""
    children = []
    for pages in groups:
        if not pages:
            continue
        children.append(
            replace(
                element,
                pages=tuple(sorted(pages)),
                url_depth=element.url_depth if url_depth is None else url_depth,
                url_split_exhausted=(
                    element.url_split_exhausted
                    if url_split_exhausted is None
                    else url_split_exhausted
                ),
            )
        )
    if not children:
        raise PartitionError("split produced no non-empty groups")
    return children
