"""URL split (paper section 3.2).

Partitions an element's pages by URL prefix one directory level deeper
than the prefix that produced the element.  Returns the child elements, or
``None`` when the prefix no longer discriminates (every page shares the
deeper prefix) — the caller then either retries at a deeper level or marks
the element as URL-split-exhausted.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.partition.partition import Element, split_element
from repro.webdata.urls import url_prefix

#: Paper: "URL prefixes up to 3 levels in depth were useful for URL split".
MAX_URL_SPLIT_DEPTH = 3


def url_split(
    element: Element,
    urls: Sequence[str],
    min_group_size: int = 1,
) -> list[Element] | None:
    """Split ``element`` on the next-deeper URL prefix.

    ``urls`` maps page id -> URL for the whole repository.  Splitting is
    attempted at ``element.url_depth + 1``; if that depth yields a single
    group the split failed and ``None`` is returned.  Children record the
    deeper depth, and children at depth >= :data:`MAX_URL_SPLIT_DEPTH` are
    marked exhausted so refinement moves them to clustered split.

    ``min_group_size`` is a scale adaptation: prefix groups smaller than it
    are coalesced (in sorted prefix order, preserving lexicographic
    adjacency) into runs of at least that size.  At the paper's repository
    sizes directory groups hold thousands of pages; at ours a directory can
    hold three, and thousands of three-page supernodes would drown the
    representation in superedge-graph overhead.
    """
    depth = element.url_depth + 1
    groups: dict[str, list[int]] = {}
    for page in element.pages:
        groups.setdefault(url_prefix(urls[page], depth), []).append(page)
    if len(groups) <= 1:
        return None
    ordered = [groups[key] for key in sorted(groups)]
    if min_group_size > 1:
        ordered = _coalesce_small_groups(ordered, min_group_size)
        if len(ordered) <= 1:
            return None
    exhausted = depth >= MAX_URL_SPLIT_DEPTH
    return split_element(
        element,
        ordered,
        url_depth=depth,
        url_split_exhausted=exhausted,
    )


def _coalesce_small_groups(
    ordered: list[list[int]], min_group_size: int
) -> list[list[int]]:
    """Merge adjacent (prefix-sorted) groups until each reaches the floor."""
    merged: list[list[int]] = []
    current: list[int] = []
    for group in ordered:
        current.extend(group)
        if len(current) >= min_group_size:
            merged.append(current)
            current = []
    if current:
        if merged:
            merged[-1].extend(current)
        else:
            merged.append(current)
    return merged


def mark_url_exhausted(element: Element) -> Element:
    """Flag an element so refinement stops attempting URL split on it."""
    from dataclasses import replace

    return replace(element, url_split_exhausted=True)
