"""Clustered split (paper section 3.2, Figure 6).

For element N_ij, each page p gets a bit vector adj(p) whose dimension is
the out-degree of supernode N_ij in the *current* supernode graph: bit b is
set iff p points to at least one page inside the b-th out-neighbour
supernode.  K-means over these vectors groups pages that "point to pages in
other supernodes" the same way — i.e. pages with similar adjacency lists at
supernode granularity — and the clusters become the child elements.

The escalation protocol follows the paper exactly: start with k equal to
the supernode's out-degree, bound each k-means run's wall-clock time, on
timeout retry with k + 2, and after ``max_attempts`` failures abort the
split for this element (the refinement driver counts consecutive aborts
for its stopping criterion).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import Digraph
from repro.partition.kmeans import kmeans_binary
from repro.partition.partition import Element, split_element


@dataclass(frozen=True)
class ClusteredSplitConfig:
    """Escalation parameters for clustered split."""

    time_bound_seconds: float = 0.5
    max_attempts: int = 3
    k_increment: int = 2
    max_iterations: int = 30
    # Scale adaptation: the paper starts k at the supernode's out-degree,
    # with elements of thousands of pages.  At our reduced repository sizes
    # an element of 50 pages can have out-degree 40+, which would shatter it
    # into singletons and destroy the clustering the representation relies
    # on.  We therefore cap k so each cluster averages at least
    # ``min_cluster_size`` pages.
    min_cluster_size: int = 128


def supernode_adjacency_vectors(
    element: Element,
    graph: Digraph,
    assignment: Sequence[int],
    element_index: int,
) -> tuple[np.ndarray, list[int]]:
    """Build adj(p) bit vectors for every page of ``element``.

    Returns (vectors, out-neighbour supernode ids).  The vector dimension
    equals the element's out-degree in the supernode graph; self-loops
    (links staying inside the element) are excluded, matching Figure 6
    where only links to *other* supernodes set bits.
    """
    neighbor_ids: dict[int, int] = {}
    rows: list[set[int]] = []
    for page in element.pages:
        row: set[int] = set()
        for target in graph.successors(page):
            target_element = assignment[int(target)]
            if target_element == element_index:
                continue
            column = neighbor_ids.setdefault(target_element, len(neighbor_ids))
            row.add(column)
        rows.append(row)
    vectors = np.zeros((len(element.pages), max(1, len(neighbor_ids))), dtype=np.int8)
    for row_index, row in enumerate(rows):
        for column in row:
            vectors[row_index, column] = 1
    ordered_neighbors = [0] * len(neighbor_ids)
    for element_id, column in neighbor_ids.items():
        ordered_neighbors[column] = element_id
    return vectors, ordered_neighbors


def clustered_split(
    element: Element,
    graph: Digraph,
    assignment: Sequence[int],
    element_index: int,
    rng: random.Random,
    config: ClusteredSplitConfig | None = None,
) -> list[Element] | None:
    """Attempt a clustered split of ``element``; None means *aborted*.

    Abort happens when (a) the element is too small to split, (b) every
    page has an identical vector (k-means can only produce one distinct
    group), or (c) ``max_attempts`` successive k-means runs fail to
    converge within the time bound.
    """
    config = config or ClusteredSplitConfig()
    if len(element.pages) < 2:
        return None
    vectors, neighbors = supernode_adjacency_vectors(
        element, graph, assignment, element_index
    )
    distinct = len({tuple(v) for v in map(tuple, vectors.tolist())})
    if distinct < 2:
        return None
    # Paper: initial k = out-degree of the supernode; clamped both to
    # feasibility and to the scale-adapted cluster-size floor (see config).
    size_cap = max(2, len(element.pages) // config.min_cluster_size)
    k = max(2, min(len(neighbors), len(element.pages), distinct, size_cap))
    for _ in range(config.max_attempts):
        result = kmeans_binary(
            vectors,
            k=min(k, distinct, len(element.pages)),
            rng=rng,
            time_bound_seconds=config.time_bound_seconds,
            max_iterations=config.max_iterations,
        )
        if result.converged:
            groups: dict[int, list[int]] = {}
            for position, page in enumerate(element.pages):
                groups.setdefault(int(result.labels[position]), []).append(page)
            nonempty = [pages for pages in groups.values() if pages]
            if len(nonempty) < 2:
                return None
            return split_element(element, nonempty)
        k += config.k_increment
    return None
