"""Complex-query layer: navigation primitives + the paper's six queries."""

from repro.query.engine import QueryEngine
from repro.query.ops import (
    count_links_between,
    induced_link_counts,
    in_neighborhood_of,
    out_neighborhood_of,
)
from repro.query.workload import (
    PAPER_QUERIES,
    QueryResult,
    query1_referred_universities,
    query2_comic_popularity,
    query3_kleinberg_base_set,
    query4_popular_topic_pages,
    query5_intra_set_ranking,
    query6_joint_references,
)

__all__ = [
    "QueryEngine",
    "out_neighborhood_of",
    "in_neighborhood_of",
    "count_links_between",
    "induced_link_counts",
    "PAPER_QUERIES",
    "QueryResult",
    "query1_referred_universities",
    "query2_comic_popularity",
    "query3_kleinberg_base_set",
    "query4_popular_topic_pages",
    "query5_intra_set_ranking",
    "query6_joint_references",
]
