"""QueryEngine: one object bundling everything a complex query touches.

The engine owns the repository (page metadata), the text and PageRank
indexes, and a *pair* of graph representations — forward (WG) and
backward (WGT) — because half the paper's queries navigate backlinks.
It also provides the navigation timer: the paper reports only "the
portion of the query execution time spent in accessing and traversing the
Web graph", so query implementations wrap exactly their representation
calls in :meth:`navigation_timer`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.baselines.base import GraphRepresentation
from repro.errors import QueryError
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.obs import tracing
from repro.obs.histogram import HistogramSet
from repro.webdata.corpus import Repository


class QueryEngine:
    """Execution context for complex queries over one repository."""

    def __init__(
        self,
        repository: Repository,
        text_index: TextIndex,
        pagerank_index: PageRankIndex,
        forward: GraphRepresentation,
        backward: GraphRepresentation | None = None,
        histograms: HistogramSet | None = None,
        on_corruption: str = "raise",
    ) -> None:
        """``on_corruption="degrade"`` puts both representations in
        graceful-degradation mode: a corrupt region is quarantined and its
        rows served empty instead of failing the whole query (schemes
        without quarantine support keep raising).  The engine-wide tally
        is :attr:`degraded_reads`.
        """
        if forward.num_pages != repository.num_pages:
            raise QueryError("representation does not match repository")
        self.repository = repository
        self.text = text_index
        self.pagerank = pagerank_index
        self.forward = forward
        self.backward = backward
        self.on_corruption = on_corruption
        forward.set_on_corruption(on_corruption)
        if backward is not None:
            backward.set_on_corruption(on_corruption)
        self._navigation_seconds = 0.0
        self._nav_lock = threading.Lock()
        self._nav_state = threading.local()
        #: Per-operation latency distributions: every timed navigation
        #: block records its wall time under its operation kind, so the
        #: experiments can report p50/p90/p99 per operation instead of a
        #: single accumulated mean.
        self.histograms = histograms if histograms is not None else HistogramSet()

    # -- navigation timing ---------------------------------------------------

    @contextmanager
    def navigation_timer(self, op: str = "navigation"):
        """Accumulate wall-clock time of the enclosed navigation block.

        ``op`` names the operation kind (Table 3's rightmost column:
        ``out_neighborhood``, ``in_neighborhood``, ...); the block's wall
        time is recorded into the per-op latency histogram as well as the
        per-query accumulator.

        Timing uses the monotonic ``perf_counter`` clock, the timer is
        *re-entrant* — a timed block calling another timed helper counts
        its wall time once, not twice (only the outermost block of each
        thread reaches the accumulator, while every block still lands in
        its own per-op histogram) — and the accumulator is lock-guarded,
        so concurrent queries on one engine never lose updates.
        """
        depth = getattr(self._nav_state, "depth", 0)
        self._nav_state.depth = depth + 1
        start = time.perf_counter()
        try:
            # When a tracer is active (request-scoped tracing in the
            # daemon), each navigation block is also a span — storage
            # counter deltas then attribute hits/seeks/bytes to exactly
            # this operation.  Free when no tracer is active.
            with tracing.span(f"nav.{op}"):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self._nav_state.depth = depth
            with self._nav_lock:
                self.histograms.observe(op, elapsed)
                if depth == 0:
                    self._navigation_seconds += elapsed

    def reset_navigation_time(self) -> None:
        """Zero the navigation-time accumulator (per-query runs)."""
        with self._nav_lock:
            self._navigation_seconds = 0.0

    @property
    def navigation_seconds(self) -> float:
        """Navigation time accumulated since the last reset."""
        with self._nav_lock:
            return self._navigation_seconds

    @property
    def degraded_reads(self) -> int:
        """Answers served from quarantined regions, both directions."""
        total = self.forward.degraded_reads
        if self.backward is not None:
            total += self.backward.degraded_reads
        return total

    def require_backward(self) -> GraphRepresentation:
        """The transpose representation; raises if the engine has none."""
        if self.backward is None:
            raise QueryError("this query needs a transpose (backlink) representation")
        return self.backward

    # -- predicate helpers (index side, not timed) -----------------------------

    def pages_in_domain(self, domain: str) -> set[int]:
        """Pages whose registered domain is ``domain``."""
        return set(self.repository.pages_in_domain(domain))

    def phrase_in_domain(self, phrase: str, domain: str | None = None) -> set[int]:
        """Pages containing ``phrase``, optionally restricted to a domain."""
        pages = self.text.pages_with_phrase(phrase.split())
        if domain is None:
            return pages
        return pages & self.pages_in_domain(domain)

    def domain_of(self, page: int) -> str:
        """Registered domain of ``page``."""
        return self.repository.page(page).domain
