"""The six complex queries of the paper's Table 3.

Each query follows the paper's hand-crafted execution plan: resolve the
page sets through the text/PageRank/domain indexes (not timed — the paper
accesses those remotely and excludes them), then run the navigation
portion inside ``engine.navigation_timer`` so that
:class:`~repro.query.engine.QueryEngine.navigation_seconds` afterwards
holds exactly the number Figure 11 plots.

Default parameters are the paper's; every query takes overrides so the
workload also runs on repositories generated with different topic seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.engine import QueryEngine
from repro.query.ops import (
    count_links_between,
    in_neighborhood_of,
    induced_link_counts,
    out_neighborhood_of,
)

#: Comic strips of Analysis 2: name -> (word set Cw, website domain Cs).
DEFAULT_COMICS: dict[str, tuple[tuple[str, ...], str]] = {
    "Dilbert": (("dilbert", "dogbert", "the boss"), "dilbert.com"),
    "Doonesbury": (("doonesbury", "zonker"), "doonesbury.com"),
    "Peanuts": (("peanuts", "snoopy", "charlie brown"), "snoopy.com"),
}

DEFAULT_UNIVERSITIES = ("stanford.edu", "mit.edu", "caltech.edu", "berkeley.edu")


@dataclass
class QueryResult:
    """Uniform result wrapper: payload + the timed navigation seconds."""

    name: str
    navigation_seconds: float
    payload: dict = field(default_factory=dict)


def _run(engine: QueryEngine, name: str, payload: dict) -> QueryResult:
    result = QueryResult(
        name=name,
        navigation_seconds=engine.navigation_seconds,
        payload=payload,
    )
    engine.reset_navigation_time()
    return result


def query1_referred_universities(
    engine: QueryEngine,
    phrase: str = "mobile networking",
    domain: str = "stanford.edu",
    tld: str = ".edu",
) -> QueryResult:
    """Analysis 1: universities that ``domain`` researchers on ``phrase``
    refer to, weighted by normalized PageRank of the referring pages."""
    engine.reset_navigation_time()
    seed_pages = engine.phrase_in_domain(phrase, domain)
    weights = {page: engine.pagerank.normalized(page) for page in seed_pages}
    with engine.navigation_timer("out_neighborhood"):
        neighborhoods = out_neighborhood_of(engine.forward, seed_pages)
    domain_weights: dict[str, float] = {}
    for page, row in neighborhoods.items():
        seen: set[str] = set()
        for target in row:
            target_domain = engine.domain_of(target)
            if not target_domain.endswith(tld) or target_domain == domain:
                continue
            if target_domain in seen:
                continue  # a page points to a domain once, whatever the count
            seen.add(target_domain)
            domain_weights[target_domain] = (
                domain_weights.get(target_domain, 0.0) + weights[page]
            )
    ranked = sorted(domain_weights.items(), key=lambda kv: (-kv[1], kv[0]))
    return _run(
        engine,
        "query1",
        {"seed_pages": len(seed_pages), "domains": ranked},
    )


def query2_comic_popularity(
    engine: QueryEngine,
    comics: dict[str, tuple[tuple[str, ...], str]] | None = None,
    domain: str = "stanford.edu",
) -> QueryResult:
    """Analysis 2: popularity C1 + C2 for each comic strip."""
    comics = comics or DEFAULT_COMICS
    engine.reset_navigation_time()
    backward = engine.require_backward()
    domain_pages = engine.pages_in_domain(domain)
    popularity: dict[str, dict[str, int]] = {}
    for comic, (words, site) in comics.items():
        word_pages = engine.text.pages_with_at_least(words, k=2) & domain_pages
        site_pages = engine.pages_in_domain(site)
        with engine.navigation_timer("count_links"):
            incoming = count_links_between(backward, domain_pages, site_pages)
        popularity[comic] = {
            "c1_word_pages": len(word_pages),
            "c2_links": incoming,
            "popularity": len(word_pages) + incoming,
        }
    ranking = sorted(
        popularity, key=lambda c: (-popularity[c]["popularity"], c)
    )
    return _run(engine, "query2", {"popularity": popularity, "ranking": ranking})


def query3_kleinberg_base_set(
    engine: QueryEngine,
    phrase: str = "internet censorship",
    top_k: int = 100,
) -> QueryResult:
    """Kleinberg base set of the top-``top_k`` PageRank pages matching
    ``phrase``: root set plus out- and in-neighborhoods."""
    engine.reset_navigation_time()
    backward = engine.require_backward()
    matching = engine.text.pages_with_phrase(phrase.split())
    roots = set(engine.pagerank.top_k(matching, top_k))
    with engine.navigation_timer("out_neighborhood"):
        forward_rows = out_neighborhood_of(engine.forward, roots)
    with engine.navigation_timer("in_neighborhood"):
        backward_rows = in_neighborhood_of(backward, roots)
    base = set(roots)
    for row in forward_rows.values():
        base.update(row)
    for row in backward_rows.values():
        base.update(row)
    return _run(
        engine,
        "query3",
        {"roots": len(roots), "base_set_size": len(base), "base_set": base},
    )


def query4_popular_topic_pages(
    engine: QueryEngine,
    phrase: str = "quantum cryptography",
    universities: tuple[str, ...] = DEFAULT_UNIVERSITIES,
    top_k: int = 10,
) -> QueryResult:
    """Ten most popular ``phrase`` pages at each university, popularity =
    in-links from outside the page's domain."""
    engine.reset_navigation_time()
    backward = engine.require_backward()
    results: dict[str, list[tuple[int, int]]] = {}
    for university in universities:
        pages = engine.phrase_in_domain(phrase, university)
        domain_pages = engine.pages_in_domain(university)
        with engine.navigation_timer("in_neighborhood"):
            backlinks = in_neighborhood_of(backward, pages)
        scored = [
            (
                page,
                sum(1 for source in row if source not in domain_pages),
            )
            for page, row in backlinks.items()
        ]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        results[university] = scored[:top_k]
    return _run(engine, "query4", {"by_university": results})


def query5_intra_set_ranking(
    engine: QueryEngine,
    phrase: str = "computer music synthesis",
    tld: str = ".edu",
    top_k: int = 10,
) -> QueryResult:
    """Rank phrase pages by in-links from other phrase pages; output the
    top ``top_k`` pages whose domain ends in ``tld``."""
    engine.reset_navigation_time()
    pages = engine.text.pages_with_phrase(phrase.split())
    with engine.navigation_timer("induced_links"):
        counts = induced_link_counts(engine.forward, pages)
    ranked = [
        (page, count)
        for page, count in counts.items()
        if engine.domain_of(page).endswith(tld)
    ]
    ranked.sort(key=lambda kv: (-kv[1], kv[0]))
    return _run(
        engine,
        "query5",
        {"set_size": len(pages), "top": ranked[:top_k]},
    )


def query6_joint_references(
    engine: QueryEngine,
    phrase: str = "optical interferometry",
    domain_a: str = "stanford.edu",
    domain_b: str = "berkeley.edu",
) -> QueryResult:
    """Pages outside both domains referenced by both phrase sets, ranked by
    total in-links from the union of the sets."""
    engine.reset_navigation_time()
    set_a = engine.phrase_in_domain(phrase, domain_a)
    set_b = engine.phrase_in_domain(phrase, domain_b)
    with engine.navigation_timer("out_neighborhood"):
        rows_a = out_neighborhood_of(engine.forward, set_a)
        rows_b = out_neighborhood_of(engine.forward, set_b)
    targets_a: dict[int, int] = {}
    for row in rows_a.values():
        for target in row:
            targets_a[target] = targets_a.get(target, 0) + 1
    targets_b: dict[int, int] = {}
    for row in rows_b.values():
        for target in row:
            targets_b[target] = targets_b.get(target, 0) + 1
    joint = []
    for target in set(targets_a) & set(targets_b):
        target_domain = engine.domain_of(target)
        if target_domain in (domain_a, domain_b):
            continue
        joint.append((target, targets_a[target] + targets_b[target]))
    joint.sort(key=lambda kv: (-kv[1], kv[0]))
    return _run(
        engine,
        "query6",
        {"set_a": len(set_a), "set_b": len(set_b), "result": joint},
    )


#: The Figure 11 workload in paper order.
PAPER_QUERIES = (
    ("query1", query1_referred_universities),
    ("query2", query2_comic_popularity),
    ("query3", query3_kleinberg_base_set),
    ("query4", query4_popular_topic_pages),
    ("query5", query5_intra_set_ranking),
    ("query6", query6_joint_references),
)


def run_query(engine: QueryEngine, name: str) -> QueryResult:
    """Run one of the six paper queries by name."""
    for query_name, query_fn in PAPER_QUERIES:
        if query_name == name:
            return query_fn(engine)
    raise QueryError(f"unknown paper query {name!r}")
