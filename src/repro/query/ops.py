"""Graph-navigation primitives over any :class:`GraphRepresentation`.

These are the operations the rightmost column of the paper's Table 3
names: out/in-neighborhoods of page sets, link counting between sets, and
the induced-subgraph link counts.  They are deliberately written against
the abstract representation interface so that one implementation serves
S-Node, Link3, the relational store and the flat file alike.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.base import GraphRepresentation


def out_neighborhood_of(
    representation: GraphRepresentation, pages: Iterable[int]
) -> dict[int, list[int]]:
    """Adjacency lists of every page in ``pages``."""
    return representation.out_neighbors_many(list(pages))


def in_neighborhood_of(
    backward: GraphRepresentation, pages: Iterable[int]
) -> dict[int, list[int]]:
    """Backlink lists of every page, given the transpose representation."""
    return backward.out_neighbors_many(list(pages))


def count_links_between(
    backward: GraphRepresentation,
    sources: set[int],
    targets: Iterable[int],
) -> int:
    """Number of links from ``sources`` into ``targets``.

    Evaluated from the target side (backlinks), which is the cheap plan
    when the target set is small — the execution strategy a repository
    engine would pick for Analysis 2's "links from stanford.edu to Cs".
    """
    total = 0
    for row in backward.out_neighbors_many(list(targets)).values():
        total += sum(1 for source in row if source in sources)
    return total


def induced_link_counts(
    representation: GraphRepresentation, pages: set[int]
) -> dict[int, int]:
    """For each page of ``pages``: number of in-links from other members.

    This is the "computation of graph induced by a set of pages" operation
    of the paper's Query 5, computed from the forward lists of the set.
    """
    counts = {page: 0 for page in pages}
    for source, row in representation.out_neighbors_many(list(pages)).items():
        for target in row:
            if target in counts and target != source:
                counts[target] += 1
    return counts
