"""Shared fixtures: small deterministic repositories and built artifacts.

Expensive artifacts (generated repositories, S-Node builds, indexes) are
session-scoped so the suite stays fast while many test modules share them.
"""

from __future__ import annotations

import pytest

from repro.partition.clustered_split import ClusteredSplitConfig
from repro.partition.refine import RefinementConfig
from repro.webdata.generator import GeneratorConfig, generate_web


@pytest.fixture(scope="session")
def small_repo():
    """A ~1200-page synthetic repository (fast to build, non-trivial)."""
    return generate_web(GeneratorConfig(num_pages=1200, seed=99))


@pytest.fixture(scope="session")
def tiny_repo():
    """A ~300-page repository for the most expensive per-test operations."""
    return generate_web(GeneratorConfig(num_pages=300, seed=17))


@pytest.fixture(scope="session")
def test_refinement_config():
    """Refinement settings scaled for the small test repositories."""
    return RefinementConfig(
        seed=3,
        min_element_size=64,
        min_url_group_size=24,
        min_abortmax=24,
        clustered=ClusteredSplitConfig(min_cluster_size=24),
    )


@pytest.fixture(scope="session")
def small_build(small_repo, test_refinement_config, tmp_path_factory):
    """A complete S-Node build over ``small_repo`` (shared, read-only)."""
    from repro.snode.build import BuildOptions, build_snode

    root = tmp_path_factory.mktemp("snode_small")
    return build_snode(
        small_repo, root, BuildOptions(refinement=test_refinement_config)
    )


@pytest.fixture(scope="session")
def small_partition(small_repo, test_refinement_config):
    """The refined partition of ``small_repo``."""
    from repro.partition.refine import refine_partition

    return refine_partition(small_repo, test_refinement_config).partition
