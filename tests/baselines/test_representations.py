"""Cross-scheme tests: every representation must agree with the graph.

Each concrete scheme also gets its scheme-specific checks (compression
relations, I/O counters, buffer behavior).
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    FlatFileRepresentation,
    HuffmanRepresentation,
    Link3Representation,
    RelationalRepresentation,
    SNodeRepresentation,
)


@pytest.fixture(scope="module")
def repo():
    from repro.webdata.generator import GeneratorConfig, generate_web

    return generate_web(GeneratorConfig(num_pages=800, seed=41))


@pytest.fixture(scope="module")
def representations(repo, tmp_path_factory, request):
    base = tmp_path_factory.mktemp("reps")
    from repro.partition.clustered_split import ClusteredSplitConfig
    from repro.partition.refine import RefinementConfig
    from repro.snode.build import BuildOptions, build_snode

    refinement = RefinementConfig(
        seed=2,
        min_element_size=48,
        min_url_group_size=16,
        min_abortmax=32,
        clustered=ClusteredSplitConfig(min_cluster_size=16),
    )
    build = build_snode(repo, base / "snode", BuildOptions(refinement=refinement))
    reps = [
        HuffmanRepresentation(repo.graph),
        Link3Representation(repo, base / "link3"),
        RelationalRepresentation(repo, base / "relational"),
        FlatFileRepresentation(repo.graph, base / "flat"),
        SNodeRepresentation(build),
    ]
    yield reps
    for rep in reps:
        rep.close()


class TestEquivalence:
    def test_random_access_matches_graph(self, repo, representations):
        rng = random.Random(5)
        sample = rng.sample(range(repo.num_pages), 120)
        for rep in representations:
            for page in sample:
                assert rep.out_neighbors(page) == repo.graph.successors_list(
                    page
                ), rep.name

    def test_bulk_access_matches_single(self, repo, representations):
        pages = list(range(0, repo.num_pages, 31))
        for rep in representations:
            bulk = rep.out_neighbors_many(pages)
            for page in pages:
                assert bulk[page] == rep.out_neighbors(page), rep.name

    def test_iterate_all_is_complete_and_correct(self, repo, representations):
        for rep in representations:
            seen = {}
            for page, row in rep.iterate_all():
                seen[page] = row
            assert len(seen) == repo.num_pages, rep.name
            for page in range(0, repo.num_pages, 53):
                assert seen[page] == repo.graph.successors_list(page), rep.name

    def test_counts_agree(self, repo, representations):
        for rep in representations:
            assert rep.num_pages == repo.num_pages, rep.name
            assert rep.num_edges == repo.num_links, rep.name

    def test_out_of_range_rejected(self, representations):
        for rep in representations:
            with pytest.raises(Exception):
                rep.out_neighbors(10**9)


class TestCompressionRelations:
    def test_compressed_schemes_beat_flat_file(self, representations):
        by_name = {rep.name: rep for rep in representations}
        flat = by_name["flat-file"].bits_per_edge()
        for name in ("plain-huffman", "link3", "s-node"):
            assert by_name[name].bits_per_edge() < flat

    def test_link3_and_snode_beat_huffman(self, representations):
        by_name = {rep.name: rep for rep in representations}
        huffman = by_name["plain-huffman"].bits_per_edge()
        assert by_name["link3"].bits_per_edge() < huffman
        assert by_name["s-node"].bits_per_edge() < huffman

    def test_relational_is_heaviest(self, representations):
        # A page-structured DB with indexes has the most overhead.
        by_name = {rep.name: rep for rep in representations}
        assert (
            by_name["relational"].bits_per_edge()
            > by_name["plain-huffman"].bits_per_edge()
        )


class TestIOInstrumentation:
    def test_disk_schemes_count_io(self, repo, representations):
        # Probe a page that actually has out-links (page 0 often has none).
        probe = next(
            page
            for page in range(repo.num_pages)
            if repo.graph.out_degree(page) > 0
        )
        for rep in representations:
            if rep.name == "plain-huffman":
                continue
            rep.drop_caches()
            rep.reset_io_stats()
            rep.out_neighbors(probe)
            stats = rep.io_stats()
            assert stats.get("bytes_read", 0) > 0, rep.name

    def test_reset_zeroes_counters(self, representations):
        for rep in representations:
            rep.out_neighbors(0)
            rep.reset_io_stats()
            stats = rep.io_stats()
            assert stats.get("bytes_read", 0) == 0, rep.name

    def test_warm_cache_avoids_io(self, representations):
        for rep in representations:
            if rep.name in ("plain-huffman", "flat-file"):
                continue  # no cache / always reads
            rep.drop_caches()
            rep.out_neighbors(0)
            rep.reset_io_stats()
            rep.out_neighbors(0)
            assert rep.io_stats().get("bytes_read", 0) == 0, rep.name


class TestRelationalSpecific:
    def test_domain_index(self, repo, representations):
        relational = next(r for r in representations if r.name == "relational")
        for domain in list(repo.domains())[:5]:
            assert sorted(relational.pages_in_domain(domain)) == sorted(
                repo.pages_in_domain(domain)
            )

    def test_unknown_domain(self, representations):
        relational = next(r for r in representations if r.name == "relational")
        assert relational.pages_in_domain("missing.example") == []

    def test_buffer_resize(self, representations):
        relational = next(r for r in representations if r.name == "relational")
        relational.set_buffer_bytes(8192)
        assert relational.out_neighbors(1)  # still serves queries


class TestLink3Specific:
    def test_reference_chains_bounded(self, repo, tmp_path):
        # With max_chain=1, a referenced row's parent must be plain.
        rep = Link3Representation(repo, tmp_path / "l3", max_chain=1)
        rng = random.Random(7)
        for page in rng.sample(range(repo.num_pages), 60):
            assert rep.out_neighbors(page) == repo.graph.successors_list(page)
        rep.close()

    def test_deeper_chains_compress_better(self, repo, tmp_path):
        shallow = Link3Representation(repo, tmp_path / "s", max_chain=1)
        deep = Link3Representation(repo, tmp_path / "d", max_chain=8)
        assert deep.size_bytes() <= shallow.size_bytes()
        shallow.close()
        deep.close()
