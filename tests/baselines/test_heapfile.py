"""Tests for the slotted-page heap file."""

from __future__ import annotations

import pytest

from repro.baselines.heapfile import PAGE_SIZE, HeapFile, HeapPage
from repro.errors import StorageError


class TestHeapPage:
    def test_insert_and_read(self):
        page = HeapPage()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self):
        page = HeapPage()
        slots = [page.insert(f"record-{i}".encode()) for i in range(20)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"record-{i}".encode()

    def test_free_space_decreases(self):
        page = HeapPage()
        before = page.free_space()
        page.insert(b"x" * 100)
        assert page.free_space() < before - 100

    def test_overflow_rejected(self):
        page = HeapPage()
        with pytest.raises(StorageError):
            page.insert(b"x" * PAGE_SIZE)

    def test_fill_to_capacity(self):
        page = HeapPage()
        count = 0
        while page.free_space() >= 10:
            page.insert(b"0123456789")
            count += 1
        assert count > 100

    def test_delete_tombstones(self):
        page = HeapPage()
        slot = page.insert(b"gone")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_invalid_slot(self):
        page = HeapPage()
        with pytest.raises(StorageError):
            page.read(0)

    def test_serialization_roundtrip(self):
        page = HeapPage()
        page.insert(b"alpha")
        page.insert(b"beta")
        restored = HeapPage(bytearray(page.to_bytes()))
        assert restored.read(0) == b"alpha"
        assert restored.read(1) == b"beta"

    def test_wrong_size_rejected(self):
        with pytest.raises(StorageError):
            HeapPage(bytearray(100))

    def test_usable_space(self):
        assert 0 < HeapPage.usable_space() < PAGE_SIZE


class TestHeapFile:
    def test_create_empty(self, tmp_path):
        heap = HeapFile(tmp_path / "h.heap")
        assert heap.num_pages == 0
        assert heap.size_bytes() == 0

    def test_append_and_read(self, tmp_path):
        heap = HeapFile(tmp_path / "h.heap")
        page = HeapPage()
        page.insert(b"data")
        number = heap.append_page(page)
        assert heap.num_pages == 1
        assert heap.read_page(number).read(0) == b"data"

    def test_write_back(self, tmp_path):
        heap = HeapFile(tmp_path / "h.heap")
        number = heap.append_page(HeapPage())
        page = heap.read_page(number)
        page.insert(b"late")
        heap.write_page(number, page)
        assert heap.read_page(number).read(0) == b"late"

    def test_out_of_range(self, tmp_path):
        heap = HeapFile(tmp_path / "h.heap")
        with pytest.raises(StorageError):
            heap.read_page(0)
        with pytest.raises(StorageError):
            heap.write_page(3, HeapPage())

    def test_reopen_preserves_pages(self, tmp_path):
        heap = HeapFile(tmp_path / "h.heap")
        page = HeapPage()
        page.insert(b"persist")
        heap.append_page(page)
        reopened = HeapFile(tmp_path / "h.heap")
        assert reopened.num_pages == 1
        assert reopened.read_page(0).read(0) == b"persist"

    def test_unaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.heap"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            HeapFile(path)
