"""Tests for the disk-backed B+tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.btree import PAGE_SIZE, BPlusTree, MAX_VALUE_BYTES
from repro.errors import StorageError


def build_tree(tmp_path, pairs):
    return BPlusTree.bulk_build(tmp_path / "tree.bt", iter(pairs))


class TestBulkBuild:
    def test_empty_tree(self, tmp_path):
        tree = build_tree(tmp_path, [])
        assert tree.get(5) is None
        assert list(tree.scan()) == []

    def test_single_entry(self, tmp_path):
        tree = build_tree(tmp_path, [(7, b"seven")])
        assert tree.get(7) == b"seven"
        assert tree.get(8) is None

    def test_many_entries_lookup(self, tmp_path):
        pairs = [(i * 3, str(i).encode()) for i in range(5000)]
        tree = build_tree(tmp_path, pairs)
        assert tree.height >= 2
        rng = random.Random(0)
        for key, value in rng.sample(pairs, 200):
            assert tree.get(key) == value
        assert tree.get(1) is None  # between keys

    def test_unsorted_input_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            build_tree(tmp_path, [(2, b"a"), (1, b"b")])

    def test_duplicate_keys_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            build_tree(tmp_path, [(1, b"a"), (1, b"b")])

    def test_oversized_value_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            build_tree(tmp_path, [(1, b"x" * (MAX_VALUE_BYTES + 1))])

    def test_file_is_page_aligned(self, tmp_path):
        tree = build_tree(tmp_path, [(i, b"v") for i in range(100)])
        assert tree.size_bytes() % PAGE_SIZE == 0


class TestScan:
    def test_full_scan_sorted(self, tmp_path):
        pairs = [(i, str(i).encode()) for i in range(0, 2000, 2)]
        tree = build_tree(tmp_path, pairs)
        assert list(tree.scan()) == pairs

    def test_range_scan(self, tmp_path):
        pairs = [(i, b"v") for i in range(100)]
        tree = build_tree(tmp_path, pairs)
        result = [k for k, _ in tree.scan(10, 20)]
        assert result == list(range(10, 21))

    def test_range_scan_between_keys(self, tmp_path):
        pairs = [(i * 10, b"v") for i in range(50)]
        tree = build_tree(tmp_path, pairs)
        result = [k for k, _ in tree.scan(15, 35)]
        assert result == [20, 30]

    def test_len(self, tmp_path):
        tree = build_tree(tmp_path, [(i, b"v") for i in range(321)])
        assert len(tree) == 321


class TestInsert:
    def test_insert_into_empty(self, tmp_path):
        tree = build_tree(tmp_path, [])
        tree.insert(5, b"five")
        assert tree.get(5) == b"five"

    def test_insert_overwrites(self, tmp_path):
        tree = build_tree(tmp_path, [(1, b"old")])
        tree.insert(1, b"new")
        assert tree.get(1) == b"new"
        assert len(tree) == 1

    def test_inserts_force_leaf_splits(self, tmp_path):
        tree = build_tree(tmp_path, [])
        values = list(range(3000))
        random.Random(1).shuffle(values)
        for key in values:
            tree.insert(key, f"value-{key}".encode())
        assert tree.height >= 2
        for key in (0, 1234, 2999):
            assert tree.get(key) == f"value-{key}".encode()
        assert [k for k, _ in tree.scan()] == list(range(3000))

    def test_insert_then_reopen(self, tmp_path):
        tree = build_tree(tmp_path, [(1, b"a")])
        tree.insert(2, b"b")
        reopened = BPlusTree(tmp_path / "tree.bt")
        assert reopened.get(2) == b"b"


class TestFileFormat:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bt"
        path.write_bytes(b"\x00" * PAGE_SIZE)
        with pytest.raises(StorageError):
            BPlusTree(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            BPlusTree(tmp_path / "absent.bt")

    def test_custom_page_reader_used(self, tmp_path):
        pairs = [(i, b"v") for i in range(500)]
        build_tree(tmp_path, pairs)
        reads = []

        def reader(page_number):
            reads.append(page_number)
            with open(tmp_path / "tree.bt", "rb") as handle:
                handle.seek(page_number * PAGE_SIZE)
                return handle.read(PAGE_SIZE)

        tree = BPlusTree(tmp_path / "tree.bt", page_reader=reader)
        tree.get(100)
        assert reads  # all I/O went through the injected reader


class TestPageReadAccounting:
    """Regression: index probes must be metered I/O, not invisible seeks.

    Before the shared storage engine, B+tree page reads went through raw
    ``open``/``seek`` and a standalone index probe reported zero I/O.
    """

    def test_cold_probe_counts_seeks_and_bytes(self, tmp_path):
        pairs = [(i * 3, str(i).encode()) for i in range(5000)]
        build_tree(tmp_path, pairs)
        tree = BPlusTree(tmp_path / "tree.bt")
        assert tree.get(300) == b"100"
        stats = tree.io_stats()
        assert stats["disk_seeks"] > 0
        assert stats["bytes_read"] >= PAGE_SIZE  # at least one full page
        assert stats["bytes_read"] % PAGE_SIZE == 0
        assert stats["index_page_loads"] >= tree.height

    def test_descent_reads_height_pages(self, tmp_path):
        pairs = [(i * 3, str(i).encode()) for i in range(5000)]
        build_tree(tmp_path, pairs)
        tree = BPlusTree(tmp_path / "tree.bt")
        assert tree.height >= 2
        tree.metrics.reset()
        tree.get(300)
        # One counted page read per level (meta page is pinned at open).
        assert tree.io_stats()["bytes_read"] == tree.height * PAGE_SIZE

    def test_cached_probe_is_free(self, tmp_path):
        pairs = [(i, b"v") for i in range(2000)]
        build_tree(tmp_path, pairs)
        tree = BPlusTree(tmp_path / "tree.bt")
        tree.get(100)
        tree.metrics.reset()
        tree.get(100)  # same root-to-leaf path, now buffered
        stats = tree.io_stats()
        assert stats.get("bytes_read", 0) == 0
        assert stats.get("disk_seeks", 0) == 0
        assert stats["buffer_hits"] >= tree.height


@settings(deadline=None, max_examples=20)
@given(
    st.lists(
        st.tuples(st.integers(0, 10**6), st.binary(max_size=40)),
        max_size=300,
        unique_by=lambda kv: kv[0],
    )
)
def test_property_bulk_build_then_get(tmp_path_factory, pairs):
    pairs = sorted(pairs)
    tree = BPlusTree.bulk_build(
        tmp_path_factory.mktemp("prop") / "t.bt", iter(pairs)
    )
    for key, value in pairs:
        assert tree.get(key) == value
    assert list(tree.scan()) == pairs
