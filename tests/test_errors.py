"""The exception hierarchy: everything derives from ReproError."""

from __future__ import annotations

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exception_type",
    [
        errors.CodecError,
        errors.BitStreamError,
        errors.GraphError,
        errors.PartitionError,
        errors.StorageError,
        errors.QueryError,
        errors.BuildError,
    ],
)
def test_all_derive_from_repro_error(exception_type):
    assert issubclass(exception_type, errors.ReproError)


def test_bitstream_error_is_codec_error():
    assert issubclass(errors.BitStreamError, errors.CodecError)


def test_catching_base_catches_library_errors(tmp_path):
    from repro.snode.store import SNodeStore

    with pytest.raises(errors.ReproError):
        SNodeStore(tmp_path / "missing")
