"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture()
def stream(tmp_path):
    path = tmp_path / "crawl.wb"
    assert main(["generate", "--pages", "250", "--seed", "4", "--out", str(path)]) == 0
    return path


@pytest.fixture()
def built(stream, tmp_path):
    root = tmp_path / "snode"
    assert main(["build", "--stream", str(stream), "--out", str(root)]) == 0
    return root


class TestGenerate:
    def test_creates_stream(self, stream, capsys):
        assert stream.exists()

    def test_output_mentions_counts(self, tmp_path, capsys):
        path = tmp_path / "c.wb"
        main(["generate", "--pages", "100", "--out", str(path)])
        out = capsys.readouterr().out
        assert "100 pages" in out


class TestBuild:
    def test_build_and_stats(self, built, capsys):
        assert main(["stats", str(built)]) == 0
        out = capsys.readouterr().out
        assert "num_supernodes" in out
        assert "payload_bytes" in out

    def test_build_with_limit(self, stream, tmp_path, capsys):
        root = tmp_path / "prefix"
        assert (
            main(
                ["build", "--stream", str(stream), "--out", str(root), "--limit", "100"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bits/edge" in out

    def test_build_transpose(self, stream, tmp_path, capsys):
        root = tmp_path / "wgt"
        assert (
            main(["build", "--stream", str(stream), "--out", str(root), "--transpose"])
            == 0
        )
        assert "WGT" in capsys.readouterr().out


class TestVerify:
    def test_verify_clean(self, built, capsys):
        assert main(["verify", str(built)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_fast(self, built, capsys):
        assert main(["verify", str(built), "--fast"]) == 0

    def test_verify_corrupt(self, built, capsys):
        (built / "pointers.bin").write_bytes(b"\x00\x01")
        assert main(["verify", str(built)]) == 1
        assert "PROBLEM" in capsys.readouterr().out


class TestNeighbors:
    def test_neighbors_match_stream(self, stream, built, capsys):
        from repro.webdata.webbase import read_repository

        repository = read_repository(stream)
        page = next(
            p for p in range(repository.num_pages)
            if repository.graph.out_degree(p) > 0
        )
        assert main(["neighbors", str(built), str(page)]) == 0
        printed = [int(x) for x in capsys.readouterr().out.split()]
        assert printed == repository.graph.successors_list(page)

    def test_unknown_page(self, built, capsys):
        assert main(["neighbors", str(built), "999999"]) == 1


class TestStats:
    def test_missing_root(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1


class TestExperimentDispatch:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "frobnicate"]) == 1

    def test_known_experiment_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        # Clear harness caches so the tiny scale takes effect.
        from repro.experiments import harness

        harness.master_repository.cache_clear()
        harness.dataset.cache_clear()
        assert main(["experiment", "scalability"]) == 0
        out = capsys.readouterr().out
        assert "supernodes" in out
        harness.master_repository.cache_clear()
        harness.dataset.cache_clear()
