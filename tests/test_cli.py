"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def stream(tmp_path):
    path = tmp_path / "crawl.wb"
    assert main(["generate", "--pages", "250", "--seed", "4", "--out", str(path)]) == 0
    return path


@pytest.fixture()
def built(stream, tmp_path):
    root = tmp_path / "snode"
    assert main(["build", "--stream", str(stream), "--out", str(root)]) == 0
    return root


class TestGenerate:
    def test_creates_stream(self, stream, capsys):
        assert stream.exists()

    def test_output_mentions_counts(self, tmp_path, capsys):
        path = tmp_path / "c.wb"
        main(["generate", "--pages", "100", "--out", str(path)])
        out = capsys.readouterr().out
        assert "100 pages" in out


class TestBuild:
    def test_build_and_stats(self, built, capsys):
        assert main(["stats", str(built)]) == 0
        out = capsys.readouterr().out
        assert "num_supernodes" in out
        assert "payload_bytes" in out

    def test_build_with_limit(self, stream, tmp_path, capsys):
        root = tmp_path / "prefix"
        assert (
            main(
                ["build", "--stream", str(stream), "--out", str(root), "--limit", "100"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bits/edge" in out

    def test_build_transpose(self, stream, tmp_path, capsys):
        root = tmp_path / "wgt"
        assert (
            main(["build", "--stream", str(stream), "--out", str(root), "--transpose"])
            == 0
        )
        assert "WGT" in capsys.readouterr().out


class TestVerify:
    def test_verify_clean(self, built, capsys):
        assert main(["verify", str(built)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_fast(self, built, capsys):
        assert main(["verify", str(built), "--fast"]) == 0

    def test_verify_corrupt(self, built, capsys):
        (built / "pointers.bin").write_bytes(b"\x00\x01")
        assert main(["verify", str(built)]) == 1
        assert "PROBLEM" in capsys.readouterr().out


class TestNeighbors:
    def test_neighbors_match_stream(self, stream, built, capsys):
        from repro.webdata.webbase import read_repository

        repository = read_repository(stream)
        page = next(
            p for p in range(repository.num_pages)
            if repository.graph.out_degree(p) > 0
        )
        assert main(["neighbors", str(built), str(page)]) == 0
        printed = [int(x) for x in capsys.readouterr().out.split()]
        assert printed == repository.graph.successors_list(page)

    def test_unknown_page(self, built, capsys):
        assert main(["neighbors", str(built), "999999"]) == 1


class TestStats:
    def test_missing_root(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1


class TestExperimentDispatch:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "frobnicate"]) == 1

    def test_known_experiment_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        # Clear harness caches so the tiny scale takes effect.
        from repro.experiments import harness

        harness.master_repository.cache_clear()
        harness.dataset.cache_clear()
        assert main(["experiment", "scalability"]) == 0
        out = capsys.readouterr().out
        assert "supernodes" in out
        harness.master_repository.cache_clear()
        harness.dataset.cache_clear()


class TestStatsBreakdown:
    def test_text_breakdown_lists_components(self, built, capsys):
        assert main(["stats", str(built)]) == 0
        out = capsys.readouterr().out
        assert "on-disk size breakdown" in out
        assert "supernode graph" in out
        assert "pointers" in out
        assert "total" in out

    def test_json_breakdown(self, built, capsys):
        assert main(["stats", str(built), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        on_disk = data["on_disk"]
        assert on_disk["total_disk_bytes"] > 0
        assert on_disk["payload_files"]["disk_bytes"] > 0
        assert on_disk["supernode_graph_bytes"] > 0
        # Components sum to the reported total.
        component_sum = (
            on_disk["payload_files"]["disk_bytes"]
            + on_disk["supernode_graph_bytes"]
            + on_disk["pointer_bytes"]
            + on_disk["pageid_index_bytes"]
            + on_disk["newid_map_bytes"]
            + on_disk["domain_index_bytes"]
            + on_disk["manifest_bytes"]
        )
        assert component_sum == on_disk["total_disk_bytes"]
        assert data["manifest"]["num_pages"] == 250


class TestBuildTrace:
    def test_trace_prints_span_tree(self, stream, tmp_path, capsys):
        root = tmp_path / "traced"
        assert (
            main(["build", "--stream", str(stream), "--out", str(root), "--trace"])
            == 0
        )
        err = capsys.readouterr().err
        assert "build.stream" in err
        assert "build.refine" in err
        assert "build.encode" in err

    def test_trace_out_writes_jsonl(self, stream, tmp_path, capsys):
        root = tmp_path / "traced"
        spans_path = tmp_path / "spans.jsonl"
        assert (
            main(
                [
                    "build",
                    "--stream",
                    str(stream),
                    "--out",
                    str(root),
                    "--trace-out",
                    str(spans_path),
                ]
            )
            == 0
        )
        header, *records = [
            json.loads(line) for line in spans_path.read_text().splitlines()
        ]
        assert header["schema"] == "repro-spans"
        assert header["spans"] == len(records)
        names = {record["name"] for record in records}
        assert {"build.stream", "build.refine", "build.encode"} <= names

    def test_quiet_suppresses_progress(self, stream, tmp_path, capsys):
        root = tmp_path / "quiet"
        assert (
            main(["build", "--stream", str(stream), "--out", str(root), "--quiet"])
            == 0
        )
        assert capsys.readouterr().err == ""


class TestBenchCommands:
    @pytest.fixture()
    def reports(self, tmp_path):
        from repro.obs.report import build_report, write_report

        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old = write_report(
            build_report("demo", results=[{"wall_ms": 10.0}]), old_dir
        )
        new = write_report(
            build_report("demo", results=[{"wall_ms": 20.0}]), new_dir
        )
        return old, new

    def test_bench_validate_ok(self, reports, capsys):
        old, _new = reports
        assert main(["bench-validate", str(old)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bench_validate_rejects_bad_file(self, reports, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}")
        old, _new = reports
        assert main(["bench-validate", str(old), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_bench_diff_flags_regression(self, reports, capsys):
        old, new = reports
        assert main(["bench-diff", str(old), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_diff_identical_passes(self, reports, capsys):
        old, _new = reports
        assert main(["bench-diff", str(old), str(old)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_bench_diff_threshold(self, reports, capsys):
        old, new = reports
        assert (
            main(["bench-diff", str(old), str(new), "--threshold", "1.5"]) == 0
        )
        capsys.readouterr()


class TestExperimentJson:
    def test_experiment_writes_bench_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        from repro.experiments import harness

        harness.master_repository.cache_clear()
        harness.dataset.cache_clear()
        monkeypatch.chdir(tmp_path)
        try:
            assert (
                main(["experiment", "scalability", "--json", str(tmp_path)]) == 0
            )
        finally:
            harness.master_repository.cache_clear()
            harness.dataset.cache_clear()
        report_path = tmp_path / "BENCH_scalability.json"
        assert report_path.exists()
        from repro.obs.report import load_report

        report = load_report(report_path)
        assert report["experiment"] == "scalability"
        assert report["params"]["scale_factor"] == 0.05
        capsys.readouterr()
