"""Seek-distance and sequential-run profiles reconstructed from I/O traces."""

from repro.obs.profile.seekprof import FileSeekProfile, SeekProfile
from repro.obs.profile.trace import AccessTracer


class TestFileSeekProfile:
    def test_sequential_reads_form_one_run(self):
        profile = FileSeekProfile("a.dat")
        profile.observe(0, 100, seek=True)  # first read: cold seek
        profile.observe(100, 100, seek=False)
        profile.observe(200, 50, seek=False)
        profile.finalize()
        assert profile.reads == 3
        assert profile.bytes_read == 250
        assert profile.seeks == 1
        assert profile.first_reads == 1
        assert profile.sequential_fraction == 2 / 3
        assert profile.run_reads.count == 1
        assert profile.run_reads.max >= 3
        assert profile.run_bytes.mean == 250

    def test_seek_direction_and_distance(self):
        profile = FileSeekProfile("a.dat")
        profile.observe(0, 100, seek=True)  # unknown position
        profile.observe(4096, 100, seek=True)  # forward by 3996
        profile.observe(100, 100, seek=True)  # backward by 4096
        profile.finalize()
        assert profile.first_reads == 1
        assert profile.forward_seeks == 1
        assert profile.backward_seeks == 1
        assert profile.seek_distance.count == 2
        # Power-of-two buckets: the recorded maximum is bucket-rounded, so
        # only assert it is at least the true distance.
        assert profile.seek_distance.max >= 4096

    def test_forget_makes_next_seek_a_first_read(self):
        profile = FileSeekProfile("a.dat")
        profile.observe(0, 100, seek=True)
        profile.forget()
        profile.observe(500, 100, seek=True)
        profile.finalize()
        assert profile.first_reads == 2
        assert profile.seek_distance.count == 0

    def test_each_seek_closes_the_open_run(self):
        profile = FileSeekProfile("a.dat")
        profile.observe(0, 10, seek=True)
        profile.observe(10, 10, seek=False)
        profile.observe(1000, 10, seek=True)  # run of 2 closed
        profile.observe(1010, 10, seek=False)
        profile.observe(1020, 10, seek=False)
        profile.finalize()  # run of 3 closed
        assert profile.run_reads.count == 2
        assert profile.run_reads.mean == 2.5

    def test_empty_profile(self):
        profile = FileSeekProfile("a.dat")
        profile.finalize()
        assert profile.sequential_fraction == 0.0
        assert profile.to_dict()["reads"] == 0


class TestSeekProfile:
    def _trace(self):
        tracer = AccessTracer()
        tracer.record_io("a.dat", 0, 100, True)
        tracer.record_io("a.dat", 100, 100, False)
        tracer.record_io("b.dat", 0, 50, True)
        tracer.record_forget("a.dat")
        tracer.record_io("a.dat", 900, 100, True)
        tracer.record_page("b.dat", 1)  # PageEvent: duplicate, skipped
        return tracer

    def test_from_events_splits_per_file(self):
        profile = SeekProfile.from_events(self._trace().io_events())
        assert set(profile.files) == {"a.dat", "b.dat"}
        assert profile.files["a.dat"].reads == 3
        assert profile.files["a.dat"].first_reads == 2  # cold + post-forget
        assert profile.files["b.dat"].reads == 1
        assert profile.total_reads == 4
        assert profile.total_seeks == 3
        assert profile.sequential_fraction == 1 / 4

    def test_to_dict_shape(self):
        payload = SeekProfile.from_events(self._trace().io_events()).to_dict()
        assert payload["total_reads"] == 4
        assert sorted(payload["files"]) == ["a.dat", "b.dat"]
        entry = payload["files"]["a.dat"]
        assert entry["sequential_fraction"] == 1 / 3
        assert "seek_distance_bytes" in entry
        assert "sequential_runs" in entry

    def test_render_lists_files_and_total(self):
        text = SeekProfile.from_events(self._trace().io_events()).render()
        assert "a.dat" in text
        assert "b.dat" in text
        assert "TOTAL" in text

    def test_empty_render(self):
        assert SeekProfile.from_events(()).render() == "(no I/O recorded)"
