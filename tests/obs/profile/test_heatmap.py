"""Hot-set heatmaps: per-kind rankings, supernode folding, skew, exports."""

from repro.obs.profile.heatmap import AccessHeatmap, _default_node_of
from repro.obs.profile.trace import AccessTracer


def _trace():
    tracer = AccessTracer()
    # Supernode 3 is hot: intranode twice, superedge once.
    tracer.record_buffer(1, ("intra", 3), "intranode", hit=False, pinned=False)
    tracer.record_admit(1, ("intra", 3), "intranode", 64)
    tracer.record_buffer(1, ("intra", 3), "intranode", hit=True, pinned=False)
    tracer.record_buffer(2, ("super", 3, 5), "superedge", hit=False, pinned=False)
    tracer.record_buffer(1, ("intra", 7), "intranode", hit=False, pinned=False)
    tracer.record_buffer(1, "mapping", None, hit=True, pinned=True)
    tracer.record_page("pages.dat", 0)
    tracer.record_page("pages.dat", 0)
    tracer.record_page("pages.dat", 4)
    return tracer


class TestNodeExtraction:
    def test_structured_keys_yield_their_supernode(self):
        assert _default_node_of(("intra", 3)) == 3
        assert _default_node_of(("super", 3, 5)) == 3

    def test_unstructured_keys_yield_none(self):
        assert _default_node_of("mapping") is None
        assert _default_node_of(("page", "file.dat")) is None
        assert _default_node_of((7,)) is None


class TestAccessHeatmap:
    def test_counts_unpinned_accesses_by_kind(self):
        heatmap = AccessHeatmap.from_events(_trace().buffer_events())
        assert heatmap.accesses == 4
        assert heatmap.pinned_accesses == 1
        assert heatmap.by_kind["intranode"][("intra", 3)] == 2
        assert heatmap.by_kind["superedge"][("super", 3, 5)] == 1
        assert heatmap.distinct_keys == 3

    def test_top_per_kind(self):
        heatmap = AccessHeatmap.from_events(_trace().buffer_events())
        assert heatmap.top("intranode", 1) == [(("intra", 3), 2)]
        assert heatmap.top("missing-kind") == []

    def test_hot_supernodes_fold_across_kinds(self):
        heatmap = AccessHeatmap.from_events(_trace().buffer_events())
        assert heatmap.hot_supernodes(2) == [(3, 3), (7, 1)]

    def test_hot_pages_from_io_stream(self):
        tracer = _trace()
        heatmap = AccessHeatmap.from_events(
            tracer.buffer_events(), tracer.io_events()
        )
        assert heatmap.hot_pages("pages.dat", 1) == [(0, 2)]
        assert heatmap.hot_pages("other.dat") == []

    def test_skew_shares(self):
        heatmap = AccessHeatmap.from_events(_trace().buffer_events())
        skew = heatmap.skew()
        assert skew["distinct_keys"] == 3
        assert skew["top1_share"] == 2 / 4
        assert skew["top10pct_share"] == 2 / 4  # top 10% of 3 keys = 1 key

    def test_working_set_curve_is_cumulative(self):
        heatmap = AccessHeatmap.from_events(_trace().buffer_events())
        curve = heatmap.working_set_curve()
        assert curve[0] == {"keys": 1, "fraction": 2 / 4}
        assert curve[-1] == {"keys": 3, "fraction": 1.0}

    def test_empty_heatmap(self):
        heatmap = AccessHeatmap.from_events(())
        assert heatmap.working_set_curve() == []
        assert heatmap.skew()["distinct_keys"] == 0
        assert heatmap.hot_supernodes() == []
        assert heatmap.render() == "(no buffer accesses recorded)"


class TestExport:
    def test_to_dict_shape(self):
        tracer = _trace()
        payload = AccessHeatmap.from_events(
            tracer.buffer_events(), tracer.io_events()
        ).to_dict(top_k=2)
        assert payload["accesses"] == 4
        assert payload["pinned_accesses"] == 1
        assert payload["by_kind"]["intranode"]["top"][0] == {
            "key": ["intra", 3],
            "count": 2,
        }
        assert payload["hot_supernodes"][0] == {"supernode": 3, "accesses": 3}
        assert payload["hot_pages"]["pages.dat"][0] == {"page": 0, "reads": 2}
        assert payload["working_set_curve"][-1]["fraction"] == 1.0

    def test_render_mentions_hot_supernodes(self):
        text = AccessHeatmap.from_events(_trace().buffer_events()).render()
        assert "hot supernodes" in text
        assert "s3x3" in text
