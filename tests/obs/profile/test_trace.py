"""AccessTracer: recording, ring bounds, hooks, JSONL export."""

import json

import pytest

from repro.obs.profile import trace as profile_trace
from repro.obs.profile.trace import (
    AccessTracer,
    AdmitEvent,
    BufferEvent,
    DropEvent,
    ForgetEvent,
    IOEvent,
    PageEvent,
    activated,
    current_profiler,
)


class TestRecording:
    def test_io_events_in_order_with_monotonic_seq(self):
        tracer = AccessTracer()
        tracer.record_io("a.dat", 0, 10, True)
        tracer.record_page("b.dat", 3)
        tracer.record_forget("a.dat")
        events = tracer.io_events()
        assert [type(e) for e in events] == [IOEvent, PageEvent, ForgetEvent]
        assert [e.seq for e in events] == [1, 2, 3]

    def test_buffer_events_share_the_sequence(self):
        tracer = AccessTracer()
        tracer.record_io("a.dat", 0, 10, True)
        tracer.record_buffer(1, ("intra", 0), "intranode", hit=False, pinned=False)
        tracer.record_admit(1, ("intra", 0), "intranode", 64)
        tracer.record_drop(1)
        assert [e.seq for e in tracer.buffer_events()] == [2, 3, 4]
        assert tracer.seq == 4

    def test_ring_bound_drops_oldest_and_counts(self):
        tracer = AccessTracer(capacity=2)
        for offset in range(5):
            tracer.record_io("a.dat", offset, 1, False)
        events = tracer.io_events()
        assert len(events) == 2
        assert [e.offset for e in events] == [3, 4]
        assert tracer.dropped_io == 3
        assert tracer.dropped_buffer == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            AccessTracer(capacity=0)

    def test_summary_counts_by_type(self):
        tracer = AccessTracer()
        tracer.record_io("a", 0, 1, True)
        tracer.record_buffer(1, "k", None, hit=True, pinned=False)
        tracer.record_buffer(1, "k", None, hit=False, pinned=False)
        tracer.record_admit(1, "k", None, 8)
        summary = tracer.summary()
        assert summary["io_reads"] == 1
        assert summary["buffer_hits"] == 1
        assert summary["buffer_misses"] == 1
        assert summary["admits"] == 1


class TestActivation:
    def test_no_profiler_by_default(self):
        assert current_profiler() is None

    def test_activated_installs_and_restores(self):
        tracer = AccessTracer()
        with activated(tracer) as active:
            assert active is tracer
            assert current_profiler() is tracer
        assert current_profiler() is None

    def test_hooks_record_only_when_active(self):
        tracer = AccessTracer()
        profile_trace.io_read("a.dat", 0, 4, True)  # inactive: ignored
        with activated(tracer):
            profile_trace.io_read("a.dat", 0, 4, True)
            profile_trace.buffer_access(object(), "k", "kind", hit=False, pinned=False)
        profile_trace.io_read("a.dat", 4, 4, False)  # inactive again
        assert len(tracer.io_events()) == 1
        assert len(tracer.buffer_events()) == 1

    def test_inactive_hooks_never_touch_a_tracer(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("tracer method called while inactive")

        for name in (
            "record_io",
            "record_page",
            "record_forget",
            "record_buffer",
            "record_admit",
            "record_drop",
        ):
            monkeypatch.setattr(AccessTracer, name, boom)
        profile_trace.io_read("a.dat", 0, 4, True)
        profile_trace.page_read("a.dat", 1)
        profile_trace.position_forgotten("a.dat")
        profile_trace.buffer_access(object(), "k", None, hit=True, pinned=False)
        profile_trace.buffer_admit(object(), "k", None, 8)
        profile_trace.buffer_drop(object())


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = AccessTracer()
        tracer.record_io("a.dat", 0, 10, True)
        tracer.record_buffer(7, ("intra", 3), "intranode", hit=False, pinned=False)
        tracer.record_admit(7, ("intra", 3), "intranode", 64)
        tracer.record_drop(7, None)
        path = tmp_path / "events.jsonl"
        tracer.write_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == ["io", "miss", "admit", "drop"]
        assert records[1]["key"] == ["intra", 3]
        assert records[2]["cost"] == 64
        assert records[3]["key"] is None

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        AccessTracer().write_jsonl(path)
        assert path.read_text() == ""
