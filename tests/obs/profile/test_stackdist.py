"""Mattson stack-distance analysis vs the real byte-budgeted LRU cache.

The load-bearing property: for any access trace whose entry costs all fit
within the byte budget, the one-pass predicted hit count equals the hit
count measured by replaying the same trace through
:class:`repro.util.lru.LRUCache` — exactly, at every capacity.  When some
entries exceed the budget the real cache's "admit oversized alone" rule
retains data the model evicts, so the prediction is a lower bound.
"""

import random

from repro.obs.profile.stackdist import StackDistance, analyze_buffer_trace
from repro.obs.profile.trace import AccessTracer
from repro.util.lru import LRUCache


def _measure_lru_hits(accesses, capacity):
    """Replay (key, cost) accesses through the real cache, counting hits."""
    cache = LRUCache(capacity)
    hits = 0
    for key, cost in accesses:
        if cache.get(key) is not None:
            hits += 1
        else:
            cache.put(key, key, cost)
    return hits


def _predict_hits(accesses, capacity):
    analysis = StackDistance()
    for key, cost in accesses:
        analysis.access(key, cost=cost)
    return analysis.curve().predicted_hits(capacity)


def _random_trace(rng, num_accesses, num_keys, cost_of):
    accesses = []
    for _ in range(num_accesses):
        # Skewed popularity so some keys re-occur at short distances and
        # others at long ones — exercises the whole curve.
        key = min(int(rng.expovariate(0.15)), num_keys - 1)
        accesses.append((key, cost_of(key)))
    return accesses


class TestExactness:
    def test_uniform_costs_match_exactly_at_every_capacity(self):
        rng = random.Random(42)
        for trial in range(10):
            accesses = _random_trace(rng, 400, 40, cost_of=lambda key: 100)
            for capacity in (100, 250, 500, 1000, 2000, 4000):
                assert _predict_hits(accesses, capacity) == _measure_lru_hits(
                    accesses, capacity
                ), f"trial {trial} capacity {capacity}"

    def test_variable_costs_match_exactly_when_all_fit(self):
        rng = random.Random(7)
        cost_of = lambda key: 40 + (key * 37) % 160  # noqa: E731 — 40..199
        for trial in range(10):
            accesses = _random_trace(rng, 400, 40, cost_of=cost_of)
            for capacity in (200, 400, 800, 1600, 6400):
                assert _predict_hits(accesses, capacity) == _measure_lru_hits(
                    accesses, capacity
                ), f"trial {trial} capacity {capacity}"

    def test_oversized_entries_make_prediction_a_lower_bound(self):
        rng = random.Random(99)
        # Some keys cost more than the smaller capacities: the real cache
        # keeps one oversized entry resident, the model does not.
        cost_of = lambda key: 50 if key % 3 else 700  # noqa: E731
        for trial in range(10):
            accesses = _random_trace(rng, 300, 30, cost_of=cost_of)
            for capacity in (100, 300, 500, 650):
                predicted = _predict_hits(accesses, capacity)
                measured = _measure_lru_hits(accesses, capacity)
                assert predicted <= measured, f"trial {trial} capacity {capacity}"


class TestStackDistance:
    def test_distance_includes_the_key_itself(self):
        analysis = StackDistance()
        analysis.access("a", cost=10)
        analysis.access("a", cost=10)
        # Immediate re-access: distance is the key's own cost.
        assert analysis.distances == [10]

    def test_distance_sums_intervening_distinct_keys(self):
        analysis = StackDistance()
        analysis.access("a", cost=10)
        analysis.access("b", cost=20)
        analysis.access("b", cost=20)  # distance 20
        analysis.access("a", cost=10)  # distance 10 + 20
        assert analysis.distances == [20, 30]
        assert analysis.compulsory == 2

    def test_pools_have_independent_stacks(self):
        analysis = StackDistance()
        analysis.access("k", cost=10, pool="forward")
        analysis.access("k", cost=10, pool="backward")
        # The second access is a first touch in its own pool.
        assert analysis.compulsory == 2
        assert analysis.distances == []

    def test_uncounted_accesses_update_the_stack_only(self):
        analysis = StackDistance()
        analysis.access("a", cost=10, count=False)  # warm-up
        analysis.access("a", cost=10)
        assert analysis.uncounted == 1
        assert analysis.accesses == 1
        assert analysis.compulsory == 0
        assert analysis.distances == [10]

    def test_drop_forgets_a_key(self):
        analysis = StackDistance()
        analysis.access("a", cost=10)
        analysis.drop("a")
        analysis.access("a", cost=10)
        assert analysis.compulsory == 2

    def test_drop_none_clears_the_pool(self):
        analysis = StackDistance()
        analysis.access("a", cost=10)
        analysis.access("b", cost=10)
        analysis.drop()
        analysis.access("a", cost=10)
        assert analysis.compulsory == 3


class TestMissRatioCurve:
    def _curve(self):
        analysis = StackDistance()
        for key in ("a", "b", "a", "c", "b", "a"):
            analysis.access(key, cost=100)
        return analysis.curve()

    def test_predicted_hits_step_function(self):
        curve = self._curve()
        # Distances: a->200, b->300, a->300; hits at C>=200: 1, C>=300: 3.
        assert curve.predicted_hits(100) == 0
        assert curve.predicted_hits(200) == 1
        assert curve.predicted_hits(300) == 3
        assert curve.compulsory == 3
        assert curve.accesses == 6

    def test_capacity_landmarks(self):
        curve = self._curve()
        assert curve.min_useful_capacity == 200
        assert curve.saturation_capacity == 300

    def test_breakpoints_cumulative(self):
        assert self._curve().breakpoints() == [(200, 1), (300, 3)]

    def test_to_dict_with_spot_capacities(self):
        payload = self._curve().to_dict(capacities=[200, 1000])
        assert payload["accesses"] == 6
        assert payload["at"]["200"]["predicted_hits"] == 1
        assert payload["at"]["1000"]["hit_ratio"] == 3 / 6
        assert payload["curve"][-1]["hits"] == 3

    def test_empty_curve(self):
        curve = StackDistance().curve()
        assert curve.predicted_hits(1000) == 0
        assert curve.hit_ratio(1000) == 0.0
        assert curve.saturation_capacity == 0


class TestAnalyzeBufferTrace:
    def test_replay_matches_direct_feeding(self):
        tracer = AccessTracer()
        pool = 1
        for key, hit in (("a", False), ("b", False), ("a", True)):
            tracer.record_buffer(pool, key, None, hit=hit, pinned=False)
            if not hit:
                tracer.record_admit(pool, key, None, 50)
        curve = analyze_buffer_trace(tracer.buffer_events())
        assert curve.accesses == 3
        assert curve.compulsory == 2
        assert curve.predicted_hits(100) == 1

    def test_pinned_events_skipped_by_default(self):
        tracer = AccessTracer()
        tracer.record_buffer(1, "root", None, hit=True, pinned=True)
        tracer.record_buffer(1, "k", None, hit=False, pinned=False)
        curve = analyze_buffer_trace(tracer.buffer_events())
        assert curve.accesses == 1

    def test_count_from_seq_excludes_warmup_but_warms_the_stack(self):
        tracer = AccessTracer()
        tracer.record_buffer(1, "a", None, hit=False, pinned=False)
        tracer.record_admit(1, "a", None, 50)
        boundary = tracer.seq
        tracer.record_buffer(1, "a", None, hit=True, pinned=False)
        curve = analyze_buffer_trace(
            tracer.buffer_events(), count_from_seq=boundary
        )
        # Only the post-boundary access counts, and it is a hit (not a
        # compulsory miss) because the warm-up populated the stack.
        assert curve.accesses == 1
        assert curve.compulsory == 0
        assert curve.predicted_hits(50) == 1

    def test_drop_event_resets_the_pool(self):
        tracer = AccessTracer()
        tracer.record_buffer(1, "a", None, hit=False, pinned=False)
        tracer.record_admit(1, "a", None, 50)
        tracer.record_drop(1, None)
        tracer.record_buffer(1, "a", None, hit=False, pinned=False)
        curve = analyze_buffer_trace(tracer.buffer_events())
        assert curve.compulsory == 2
