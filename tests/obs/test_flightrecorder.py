"""Tests for the flight recorder, debug bundles and trace rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs.flightrecorder import (
    BUNDLE_MANIFEST,
    BUNDLE_SCHEMA,
    BUNDLE_TRACES,
    FlightRecorder,
    TRACE_SCHEMA,
    fold_traces,
    load_traces,
    read_debug_bundle,
    render_waterfall,
    write_debug_bundle,
)


def make_trace(
    trace_id: str,
    server_us: int = 1000,
    outcome: str = "ok",
    op: str = "query",
    spans: list | None = None,
) -> dict:
    """A minimal trace document of the shape the daemon records."""
    return {
        "trace": trace_id,
        "rid": f"rid-{trace_id}",
        "client": "client-0",
        "op": op,
        "outcome": outcome,
        "unix": 0.0,
        "server_us": server_us,
        "phases_us": {"decode": 10, "execute": server_us - 10},
        "counters": {"disk_seeks": 2, "bytes_read": 100},
        "parent": -1,
        "spans": spans or [],
    }


class TestFlightRecorder:
    def test_recent_ring_is_bounded_keeps_newest(self):
        recorder = FlightRecorder(recent=3, slow_threshold_s=10.0)
        for i in range(5):
            recorder.record(make_trace(f"t{i}"))
        ids = [t["trace"] for t in recorder.recent_traces()]
        assert ids == ["t2", "t3", "t4"]
        assert recorder.recorded == 5

    def test_slow_top_k_keeps_the_k_slowest(self):
        recorder = FlightRecorder(
            recent=2, slow_threshold_s=0.001, slow_top=2
        )
        for i, us in enumerate((5000, 1500, 9000, 2500)):
            recorder.record(make_trace(f"t{i}", server_us=us))
        ids = [t["trace"] for t in recorder.slow_traces()]
        assert ids == ["t2", "t0"]  # slowest first
        assert recorder.slow_seen == 4

    def test_fast_requests_never_enter_the_slow_heap(self):
        recorder = FlightRecorder(slow_threshold_s=0.050)
        recorder.record(make_trace("fast", server_us=100))
        assert recorder.slow_traces() == []
        assert recorder.slow_seen == 0

    def test_error_ring_captures_non_ok_outcomes(self):
        recorder = FlightRecorder(errors=2, slow_threshold_s=10.0)
        recorder.record(make_trace("ok1"))
        for i in range(3):
            recorder.record(make_trace(f"e{i}", outcome="bad_request"))
        ids = [t["trace"] for t in recorder.error_traces()]
        assert ids == ["e1", "e2"]

    def test_traces_dedups_across_retention_classes(self):
        # A slow error trace sits in all three structures but must dump
        # once; a slow trace aged out of the recent ring must survive.
        recorder = FlightRecorder(
            recent=1, slow_threshold_s=0.001, slow_top=4
        )
        recorder.record(
            make_trace("both", server_us=9000, outcome="server_error")
        )
        recorder.record(make_trace("newer", server_us=20))
        ids = [t["trace"] for t in recorder.traces()]
        assert sorted(ids) == ["both", "newer"]

    def test_snapshot_reports_counts_and_retained_ids(self):
        recorder = FlightRecorder(slow_threshold_s=0.001)
        recorder.record(make_trace("a", server_us=5000))
        recorder.record(make_trace("b", server_us=10, outcome="bad_request"))
        snapshot = recorder.snapshot()
        assert snapshot["recorded"] == 2
        assert snapshot["slow_seen"] == 1
        assert snapshot["retained"]["recent"] == ["a", "b"]
        assert snapshot["retained"]["slow"] == ["a"]
        assert snapshot["retained"]["errors"] == ["b"]

    def test_invalid_configuration_rejected(self):
        for kwargs in (
            {"recent": 0},
            {"slow_top": 0},
            {"errors": 0},
            {"slow_threshold_s": -1.0},
        ):
            with pytest.raises(ValueError):
                FlightRecorder(**kwargs)


class TestDebugBundle:
    def test_round_trip(self, tmp_path):
        traces = [make_trace("t1"), make_trace("t2", server_us=7000)]
        path = write_debug_bundle(
            tmp_path / "bundle",
            traces,
            stats={"uptime_seconds": 4.0},
            config={"workers": 4},
            slow_entries=[{"rid": "rid-t2", "server_us": 7000}],
        )
        bundle = read_debug_bundle(path)
        assert bundle["manifest"]["schema"] == BUNDLE_SCHEMA
        assert bundle["manifest"]["traces"] == 2
        assert bundle["traces"] == traces
        assert bundle["stats"] == {"uptime_seconds": 4.0}
        assert bundle["config"] == {"workers": 4}
        assert bundle["slow"] == [{"rid": "rid-t2", "server_us": 7000}]

    def test_traces_jsonl_has_schema_header(self, tmp_path):
        path = write_debug_bundle(tmp_path / "bundle", [make_trace("t1")])
        lines = (path / BUNDLE_TRACES).read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["traces"] == 1
        assert len(lines) == 2

    def test_empty_bundle_round_trips(self, tmp_path):
        path = write_debug_bundle(tmp_path / "bundle", [])
        bundle = read_debug_bundle(path)
        assert bundle["traces"] == []
        assert bundle["stats"] is None
        assert bundle["slow"] == []

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match=BUNDLE_MANIFEST):
            read_debug_bundle(tmp_path)

    def test_schema_mismatch_rejected(self, tmp_path):
        (tmp_path / BUNDLE_MANIFEST).write_text(
            json.dumps({"schema": "something-else", "version": 1})
        )
        with pytest.raises(ValueError, match="schema"):
            read_debug_bundle(tmp_path)

    def test_load_traces_tolerates_headerless_files(self, tmp_path):
        # A hand-built JSONL file without the header line still loads.
        path = tmp_path / "traces.jsonl"
        path.write_text(json.dumps(make_trace("t9")) + "\n")
        assert [t["trace"] for t in load_traces(path)] == ["t9"]

    def test_load_traces_missing_file_is_empty(self, tmp_path):
        assert load_traces(tmp_path / "absent.jsonl") == []


SPANS = [
    {
        "id": 0,
        "parent": -1,
        "name": "request.query",
        "start_s": 0.0,
        "duration_s": 0.0009,
        "status": "ok",
        "counters": {"disk_seeks": 2},
        "notes": {},
    },
    {
        "id": 1,
        "parent": 0,
        "name": "nav.query1",
        "start_s": 0.0001,
        "duration_s": 0.0006,
        "status": "ok",
        "counters": {"disk_seeks": 2, "bytes_read": 100},
        "notes": {},
    },
]


class TestRendering:
    def test_waterfall_shows_phases_spans_and_counters(self):
        trace = make_trace("t1", server_us=1000, spans=SPANS)
        text = render_waterfall(trace, width=20)
        assert "trace=t1" in text
        assert "decode" in text and "execute" in text
        assert "request.query" in text
        assert "nav.query1" in text
        assert "disk_seeks=2" in text
        # Every bar renders at the same width.
        bars = [line for line in text.splitlines() if "|" in line]
        assert bars and all(
            line.split("|")[1] == line.split("|")[1][:20] for line in bars
        )

    def test_waterfall_carries_error_line(self):
        trace = make_trace("t1", outcome="bad_request")
        trace["error"] = "unknown op"
        assert "error: unknown op" in render_waterfall(trace)

    def test_folded_weights_are_self_time(self):
        trace = make_trace("t1", server_us=1000, spans=SPANS)
        folded = dict(
            line.rsplit(" ", 1)
            for line in fold_traces([trace]).splitlines()
        )
        assert folded["query;decode"] == "10"
        # execute (990us) minus the root span (900us).
        assert folded["query;execute"] == "90"
        # root span self time: 900 - 600 child.
        assert folded["query;execute;request.query"] == "300"
        assert folded["query;execute;request.query;nav.query1"] == "600"

    def test_folded_sums_across_traces(self):
        trace = make_trace("t1", server_us=1000)
        folded = fold_traces([trace, trace])
        assert "query;decode 20" in folded.splitlines()
