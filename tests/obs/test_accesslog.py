"""Tests for the sampled access log and the slow-query log."""

from __future__ import annotations

import json

import pytest

from repro.obs.accesslog import AccessLog, SlowQueryLog


def _entry(rid: str, **extra) -> dict:
    return {"rid": rid, "op": "query", "outcome": "ok", **extra}


class TestAccessLog:
    def test_logs_every_request_by_default(self):
        log = AccessLog()
        assert log.log(_entry("r0")) is True
        assert log.log(_entry("r1")) is True
        assert [e["rid"] for e in log.entries()] == ["r0", "r1"]

    def test_sampling_is_deterministic_one_in_n(self):
        log = AccessLog(sample_every=3)
        sampled = [log.log(_entry(f"r{i}")) for i in range(9)]
        assert sampled == [True, False, False] * 3
        assert log.offered == 9
        assert log.logged == 3
        assert [e["rid"] for e in log.entries()] == ["r0", "r3", "r6"]

    def test_ring_caps_retention_and_counts_drops(self):
        log = AccessLog(capacity=2)
        for i in range(5):
            log.log(_entry(f"r{i}"))
        assert [e["rid"] for e in log.entries()] == ["r3", "r4"]
        assert log.ring_dropped == 3
        assert log.logged == 5  # logged counts samples, not retention

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "logs" / "access.jsonl"
        with AccessLog(sample_every=2, path=path) as log:
            for i in range(4):
                log.log(_entry(f"r{i}"))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["rid"] for line in lines] == ["r0", "r2"]

    def test_to_dict_summary(self):
        log = AccessLog(capacity=8, sample_every=2)
        for i in range(4):
            log.log(_entry(f"r{i}"))
        assert log.to_dict() == {
            "offered": 4,
            "logged": 2,
            "ring_dropped": 0,
            "sample_every": 2,
            "capacity": 8,
        }

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AccessLog(capacity=0)
        with pytest.raises(ValueError):
            AccessLog(sample_every=0)


class TestSlowQueryLog:
    def test_threshold_splits_fast_from_slow(self):
        log = SlowQueryLog(threshold_s=0.100)
        assert log.observe(0.050, _entry("fast")) is False
        assert log.observe(0.100, _entry("at")) is True
        assert log.observe(0.500, _entry("slow")) is True
        assert log.observed == 3
        assert log.slow_count == 2

    def test_top_k_keeps_the_slowest(self):
        log = SlowQueryLog(threshold_s=0.0, top_k=3)
        for i, duration in enumerate([0.1, 0.5, 0.2, 0.9, 0.3]):
            log.observe(duration, _entry(f"r{i}", duration=duration))
        top = log.top()
        assert [e["rid"] for e in top] == ["r3", "r1", "r4"]  # slowest first
        assert log.slow_count == 5  # counting is unbounded, retention is not

    def test_every_slow_request_hits_the_sink(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowQueryLog(threshold_s=0.1, top_k=1, path=path) as log:
            log.observe(0.2, _entry("r0"))
            log.observe(0.3, _entry("r1"))
            log.observe(0.01, _entry("r2"))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        # top_k bounds memory, not the on-disk trail.
        assert [line["rid"] for line in lines] == ["r0", "r1"]

    def test_to_dict_carries_threshold_and_top(self):
        log = SlowQueryLog(threshold_s=0.25, top_k=2)
        log.observe(0.3, _entry("r0"))
        data = log.to_dict()
        assert data["threshold_ms"] == pytest.approx(250.0)
        assert data["observed"] == 1
        assert data["slow"] == 1
        assert [e["rid"] for e in data["top"]] == ["r0"]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(top_k=0)
