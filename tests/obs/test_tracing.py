"""Span tracing: nesting, exception safety, counter deltas, bounds, export."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import Tracer, activated, current_tracer, note, span
from repro.storage.metrics import MetricsRegistry


class TestNesting:
    def test_parent_child_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner_a", "inner_b"]
        assert [g.name for g in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_attrs_and_duration(self):
        tracer = Tracer()
        with tracer.span("work", element=7, size=100) as node:
            pass
        assert node.attrs == {"element": 7, "size": 100}
        assert node.duration_s >= 0.0
        # A parent's duration covers its children.
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.duration_s >= inner.duration_s

    def test_current_points_to_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None


class TestExceptionSafety:
    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        node = tracer.roots[0]
        assert node.status == "error:ValueError"
        assert node.duration_s >= 0.0
        # The stack unwound: new spans are roots again.
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["fails", "after"]

    def test_error_counted_in_summary(self):
        tracer = Tracer()
        for _ in range(2):
            with pytest.raises(RuntimeError):
                with tracer.span("flaky"):
                    raise RuntimeError
        assert tracer.summary()["flaky"]["errors"] == 2

    def test_parent_survives_child_error(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            try:
                with tracer.span("inner"):
                    raise KeyError
            except KeyError:
                pass
        assert outer.status == "ok"
        assert outer.children[0].status == "error:KeyError"


class TestCounterDeltas:
    def test_deltas_captured_at_exit(self):
        registry = MetricsRegistry()
        registry.inc("bytes_read", 100)
        tracer = Tracer(registry=registry)
        with tracer.span("load") as node:
            registry.inc("bytes_read", 40)
            registry.inc("disk_seeks", 2)
        assert node.counters["bytes_read"] == 40
        assert node.counters["disk_seeks"] == 2

    def test_zero_deltas_omitted(self):
        registry = MetricsRegistry()
        registry.inc("bytes_read", 100)
        tracer = Tracer(registry=registry)
        with tracer.span("idle") as node:
            pass
        assert "bytes_read" not in node.counters

    def test_nested_deltas_are_per_span(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("outer") as outer:
            registry.inc("loads", 1)
            with tracer.span("inner") as inner:
                registry.inc("loads", 5)
        assert inner.counters["loads"] == 5
        assert outer.counters["loads"] == 6  # includes the child's work


class TestBoundedTree:
    def test_tree_stops_growing_at_cap(self):
        tracer = Tracer(max_spans=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.roots) == 3
        assert tracer.dropped == 7

    def test_summary_counts_dropped_spans(self):
        tracer = Tracer(max_spans=2)
        for _ in range(50):
            with tracer.span("hot"):
                pass
        assert tracer.summary()["hot"]["count"] == 50

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestJsonlExport:
    def test_parent_links_and_fields(self):
        tracer = Tracer()
        with tracer.span("outer", kind="x"):
            with tracer.span("inner"):
                pass
        header, *records = [
            json.loads(line) for line in tracer.to_jsonl().splitlines()
        ]
        assert header["schema"] == "repro-spans"
        assert header["version"] == tracing.SPAN_SCHEMA_VERSION
        assert header["spans"] == 2
        assert len(records) == 2
        by_name = {record["name"]: record for record in records}
        assert by_name["outer"]["parent"] == -1
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["attrs"] == {"kind": "x"}
        assert by_name["inner"]["status"] == "ok"

    def test_ids_are_stable_across_export_order(self):
        # Ids are assigned at span open, so shuffling the exported lines
        # loses nothing: the tree reconstructs from id/parent alone.
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        records = [
            json.loads(line)
            for line in tracer.to_jsonl().splitlines()[1:]
        ]
        records.reverse()
        by_id = {record["id"]: record for record in records}
        children = {}
        for record in records:
            children.setdefault(record["parent"], []).append(record["name"])
        root = by_id[0]
        assert root["name"] == "a"
        assert sorted(children[root["id"]]) == ["b", "c"]

    def test_header_counts_dropped_spans(self):
        tracer = Tracer(max_spans=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        header = json.loads(tracer.to_jsonl().splitlines()[0])
        assert header["spans"] == 1
        assert header["dropped"] == 2

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one span
        assert json.loads(lines[0])["schema"] == "repro-spans"
        assert json.loads(lines[1])["name"] == "only"

    def test_render_mentions_notes(self):
        tracer = Tracer()
        with tracer.span("q") as node:
            node.note("intranode_loads", 3)
        assert "intranode_loads=3" in tracer.render()


class TestFoldedExport:
    def test_paths_join_with_semicolons_and_aggregate(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("child"):  # same stack: folds into one line
                pass
        lines = tracer.to_folded().splitlines()
        paths = {line.rsplit(" ", 1)[0] for line in lines}
        assert paths == {"root", "root;child", "root;child;leaf"}

    def test_weights_are_nonnegative_self_time_microseconds(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        for line in tracer.to_folded().splitlines():
            assert int(line.rsplit(" ", 1)[1]) >= 0

    def test_write_folded(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "stacks.folded"
        tracer.write_folded(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert text.split(" ")[0] == "only"

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = tmp_path / "stacks.folded"
        Tracer().write_folded(path)
        assert path.read_text() == ""


class TestModuleLevelHelpers:
    def test_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with span("ignored"):
            note("ignored_note")
        assert current_tracer() is None

    def test_activated_routes_spans(self):
        tracer = Tracer()
        with activated(tracer):
            assert current_tracer() is tracer
            with span("routed", key=1):
                note("loads", 2)
        assert current_tracer() is None
        assert tracer.roots[0].name == "routed"
        assert tracer.roots[0].notes == {"loads": 2}

    def test_activation_nests(self):
        outer_tracer, inner_tracer = Tracer(), Tracer()
        with activated(outer_tracer):
            with activated(inner_tracer):
                with span("inner_only"):
                    pass
            with span("outer_only"):
                pass
        assert [r.name for r in inner_tracer.roots] == ["inner_only"]
        assert [r.name for r in outer_tracer.roots] == ["outer_only"]


class TestStoreIntegration:
    def test_snode_loads_attributed_to_spans(self, tmp_path):
        from repro.snode.build import build_snode
        from repro.webdata.generator import GeneratorConfig, generate_web

        repository = generate_web(GeneratorConfig(num_pages=400, seed=5))
        tracer = Tracer()
        with activated(tracer):
            build = build_snode(repository, tmp_path / "sn")
            build.store.drop_buffers()
            with tracer.span("query"):
                build.store.out_neighbors(0)
        build.store.close()
        query_span = tracer.roots[-1]
        assert query_span.name == "query"
        assert query_span.notes.get("intranode_loads", 0) >= 1
