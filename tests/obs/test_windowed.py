"""Tests for time-windowed histograms and counters (fake clock)."""

from __future__ import annotations

import pytest

from repro.errors import EmptyHistogramError
from repro.obs.histogram import LatencyHistogram
from repro.obs.windowed import (
    WindowedCounter,
    WindowedHistogram,
    WindowedHistogramSet,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWindowedHistogram:
    def test_records_land_in_current_window_and_cumulative(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=3, clock=clock)
        windowed.record(0.010)
        windowed.record(0.020)
        assert windowed.snapshot().count == 2
        assert windowed.cumulative.count == 2
        assert len(windowed.live_windows()) == 1

    def test_rotation_drops_old_windows_from_snapshot(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010)
        clock.advance(10.0)
        windowed.record(0.020)
        assert windowed.snapshot().count == 2  # both windows still live
        clock.advance(10.0)
        # Window 0 is now beyond the 2-window horizon.
        assert windowed.snapshot().count == 1
        assert windowed.cumulative.count == 2

    def test_on_rotate_receives_closed_windows(self):
        clock = FakeClock()
        closed: list[tuple[int, LatencyHistogram]] = []
        windowed = WindowedHistogram(
            window_seconds=10.0,
            windows=1,
            clock=clock,
            on_rotate=lambda index, hist: closed.append((index, hist)),
        )
        windowed.record(0.010)
        clock.advance(10.0)
        windowed.record(0.020)
        assert [index for index, _ in closed] == [0]
        assert closed[0][1].count == 1

    def test_windowed_merge_equals_cumulative_bit_for_bit(self):
        """The conservation property: closed + live == cumulative."""
        clock = FakeClock()
        closed: list[LatencyHistogram] = []
        windowed = WindowedHistogram(
            window_seconds=5.0,
            windows=3,
            clock=clock,
            on_rotate=lambda _index, hist: closed.append(hist),
        )
        # Dyadic values sum exactly in any order, so the equality below
        # is genuinely bit-for-bit (including the float sum/mean).
        values = [2.0**-10, 2.0**-8, 2.0**-6, 2.0**-4, 2.0**-2, 1.0, 4.0]
        for step, value in enumerate(values):
            windowed.record(value)
            windowed.record(value * 4)
            clock.advance(5.0 if step % 2 else 7.5)
        # Snapshot first: it closes anything past the horizon (feeding
        # ``closed``), so closed + live covers every observation.
        live = windowed.snapshot()
        merged = LatencyHistogram(windowed.min_value, windowed.growth)
        for histogram in closed:
            merged.merge(histogram)
        merged.merge(live)
        assert merged.to_dict() == windowed.cumulative.to_dict()

    def test_empty_snapshot_raises_on_percentile(self):
        windowed = WindowedHistogram(clock=FakeClock())
        with pytest.raises(EmptyHistogramError):
            windowed.snapshot().percentile(50)

    def test_to_dict_carries_both_views(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010)
        clock.advance(25.0)  # the only window has rotated out
        data = windowed.to_dict()
        assert data["window_seconds"] == 10.0
        assert data["windows"] == 2
        assert data["windowed"]["count"] == 0
        assert data["cumulative"]["count"] == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            WindowedHistogram(window_seconds=0)
        with pytest.raises(ValueError):
            WindowedHistogram(windows=0)


class TestWindowedCounter:
    def test_total_survives_rotation_windowed_decays(self):
        clock = FakeClock()
        counter = WindowedCounter(window_seconds=10.0, windows=2, clock=clock)
        counter.add()
        counter.add(4)
        clock.advance(10.0)
        counter.add(2)
        assert counter.windowed_count() == 7
        clock.advance(10.0)
        assert counter.windowed_count() == 2  # first window rotated out
        assert counter.total == 7

    def test_rate_uses_covered_horizon(self):
        clock = FakeClock(now=100.0)
        counter = WindowedCounter(window_seconds=10.0, windows=6, clock=clock)
        counter.add(30)
        # Alive 3 seconds: the rate denominator rounds up to one window
        # so a young counter is not wildly inflated.
        clock.advance(3.0)
        assert counter.rate() == pytest.approx(30 / 10.0)
        # Alive 30 seconds: denominator is the covered horizon.
        clock.advance(27.0)
        assert counter.rate() == pytest.approx(30 / 30.0)

    def test_to_dict(self):
        clock = FakeClock()
        counter = WindowedCounter(window_seconds=10.0, windows=2, clock=clock)
        counter.add(5)
        data = counter.to_dict()
        assert data["total"] == 5
        assert data["windowed"] == 5
        assert data["per_second"] == pytest.approx(0.5)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            WindowedCounter(window_seconds=0)
        with pytest.raises(ValueError):
            WindowedCounter(windows=0)


class TestWindowedHistogramSet:
    def test_named_family_created_on_first_use(self):
        clock = FakeClock()
        family = WindowedHistogramSet(window_seconds=10.0, windows=2, clock=clock)
        assert "query" not in family
        family.observe("query", 0.010)
        family.observe("stats", 0.001)
        assert "query" in family
        assert family.names() == ["query", "stats"]
        assert family.get("query").cumulative.count == 1

    def test_to_dict_covers_every_operation(self):
        clock = FakeClock()
        family = WindowedHistogramSet(window_seconds=10.0, windows=2, clock=clock)
        family.observe("a", 0.010)
        family.observe("b", 0.020)
        data = family.to_dict()
        assert set(data) == {"a", "b"}
        assert data["a"]["cumulative"]["count"] == 1

    def test_shared_clock_rotates_all_members(self):
        clock = FakeClock()
        family = WindowedHistogramSet(window_seconds=10.0, windows=1, clock=clock)
        family.observe("a", 0.010)
        clock.advance(10.0)
        assert family.get("a").snapshot().count == 0
        assert family.get("a").cumulative.count == 1


class TestExemplars:
    def test_exemplar_attached_to_value_bucket(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010, exemplar="tr-1")
        exemplars = windowed.exemplars()
        bucket = windowed.cumulative.bucket_index(0.010)
        assert exemplars == {bucket: {"value": 0.010, "trace": "tr-1"}}

    def test_latest_exemplar_wins_within_bucket(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010, exemplar="tr-old")
        windowed.record(0.010, exemplar="tr-new")
        (entry,) = windowed.exemplars().values()
        assert entry["trace"] == "tr-new"

    def test_record_without_exemplar_keeps_previous(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010, exemplar="tr-1")
        windowed.record(0.010)  # unexemplared observation
        (entry,) = windowed.exemplars().values()
        assert entry["trace"] == "tr-1"

    def test_exemplars_pruned_with_their_window(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010, exemplar="tr-stale")
        clock.advance(10.0)
        windowed.record(0.080, exemplar="tr-live")
        assert len(windowed.exemplars()) == 2  # both windows still live
        clock.advance(10.0)
        windowed.record(0.080, exemplar="tr-live2")
        traces = {
            entry["trace"] for entry in windowed.exemplars().values()
        }
        assert "tr-stale" not in traces
        assert traces  # the live bucket's exemplar survives

    def test_to_dict_carries_exemplars_only_when_present(self):
        clock = FakeClock()
        windowed = WindowedHistogram(window_seconds=10.0, windows=2, clock=clock)
        windowed.record(0.010)
        assert "exemplars" not in windowed.to_dict()
        windowed.record(0.020, exemplar="tr-2")
        data = windowed.to_dict()
        (entry,) = data["exemplars"].values()
        assert entry["trace"] == "tr-2"
        # JSON-facing keys are strings.
        assert all(isinstance(key, str) for key in data["exemplars"])

    def test_histogram_set_observe_passes_exemplar(self):
        clock = FakeClock()
        family = WindowedHistogramSet(
            window_seconds=10.0, windows=2, clock=clock
        )
        family.observe("query", 0.030, "tr-q")
        (entry,) = family.get("query").exemplars().values()
        assert entry == {"value": 0.030, "trace": "tr-q"}
