"""Progress throttling, phase lifecycle, and line content."""

from __future__ import annotations

import io

import pytest

from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter, ensure


class FakeClock:
    """Deterministic monotonic clock advanced by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_reporter(interval_s: float = 0.5):
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(
        label="test", stream=stream, interval_s=interval_s, clock=clock
    )
    return reporter, clock, stream


class TestThrottling:
    def test_many_updates_within_interval_emit_once(self):
        reporter, clock, stream = make_reporter()
        reporter.start_phase("stream", unit="pages")
        for _ in range(1000):
            reporter.update()
            clock.advance(0.0001)  # 1000 updates span 0.1 s < interval
        assert reporter.emitted == 1  # only the first update emitted
        assert stream.getvalue().count("\n") == 1

    def test_emits_again_after_interval(self):
        reporter, clock, _ = make_reporter()
        reporter.start_phase("stream")
        reporter.update()
        clock.advance(0.6)
        reporter.update()
        assert reporter.emitted == 2

    def test_zero_interval_emits_every_update(self):
        reporter, _, _ = make_reporter(interval_s=0.0)
        reporter.start_phase("stream")
        for _ in range(5):
            reporter.update()
        assert reporter.emitted == 5

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval_s=-1.0)


class TestPhaseLifecycle:
    def test_finish_always_emits_final_line(self):
        reporter, clock, stream = make_reporter()
        reporter.start_phase("encode", total=10)
        reporter.update(10)
        clock.advance(0.01)  # still within throttle window
        reporter.finish_phase()
        assert "[done]" in stream.getvalue().splitlines()[-1]

    def test_starting_new_phase_closes_previous(self):
        reporter, _, stream = make_reporter()
        reporter.start_phase("first")
        reporter.update()
        reporter.start_phase("second")
        reporter.finish_phase()
        lines = stream.getvalue().splitlines()
        assert any("first" in line and "[done]" in line for line in lines)
        assert any("second" in line and "[done]" in line for line in lines)

    def test_update_without_phase_is_noop(self):
        reporter, _, stream = make_reporter()
        reporter.update()
        reporter.finish_phase()
        assert stream.getvalue() == ""
        assert reporter.emitted == 0

    def test_counts_reset_between_phases(self):
        reporter, clock, stream = make_reporter()
        reporter.start_phase("first")
        reporter.update(7)
        reporter.finish_phase()
        clock.advance(1.0)
        reporter.start_phase("second")
        reporter.update(2)
        reporter.finish_phase()
        final = stream.getvalue().splitlines()[-1]
        assert "second: 2" in final


class TestLineContent:
    def test_known_total_shows_percent_and_eta(self):
        reporter, clock, stream = make_reporter()
        reporter.start_phase("stream", total=200, unit="pages")
        clock.advance(1.0)
        reporter.update(50)
        line = stream.getvalue().splitlines()[0]
        assert "50/200 pages" in line
        assert "(25.0%)" in line
        assert "50/s" in line
        assert "eta 3.0s" in line  # 150 remaining at 50/s

    def test_open_ended_shows_count_and_rate(self):
        reporter, clock, stream = make_reporter()
        reporter.start_phase("refine", unit="iterations")
        clock.advance(2.0)
        reporter.update(10)
        line = stream.getvalue().splitlines()[0]
        assert "refine: 10 iterations" in line
        assert "5/s" in line
        assert "%" not in line

    def test_detail_appended_in_brackets(self):
        reporter, _, stream = make_reporter()
        reporter.start_phase("refine")
        reporter.update(detail="411 elements")
        assert "[411 elements]" in stream.getvalue()

    def test_label_prefixes_every_line(self):
        reporter, _, stream = make_reporter()
        reporter.start_phase("stream")
        reporter.update()
        reporter.finish_phase()
        for line in stream.getvalue().splitlines():
            assert line.startswith("[test]")


class TestNullProgress:
    def test_interface_is_noop(self):
        NULL_PROGRESS.start_phase("x", total=10)
        NULL_PROGRESS.update(5)
        NULL_PROGRESS.finish_phase()
        assert NULL_PROGRESS.emitted == 0

    def test_ensure_normalizes(self):
        assert ensure(None) is NULL_PROGRESS
        reporter = ProgressReporter(stream=io.StringIO())
        assert ensure(reporter) is reporter
        assert isinstance(ensure(None), NullProgress)
