"""Histogram bucket boundaries and percentile correctness."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import EmptyHistogramError
from repro.obs.histogram import LatencyHistogram, HistogramSet


class TestBucketBoundaries:
    def test_underflow_bucket(self):
        histogram = LatencyHistogram(min_value=1.0, growth=2.0)
        assert histogram.bucket_index(0.0) == 0
        assert histogram.bucket_index(0.5) == 0
        assert histogram.bucket_index(1.0) == 0

    def test_exact_upper_bounds_land_in_own_bucket(self):
        histogram = LatencyHistogram(min_value=1.0, growth=2.0)
        # Bucket i (i >= 1) holds (2**(i-1), 2**i].
        assert histogram.bucket_index(2.0) == 1
        assert histogram.bucket_index(4.0) == 2
        assert histogram.bucket_index(8.0) == 3
        # Just above an upper bound spills into the next bucket.
        assert histogram.bucket_index(2.0000001) == 2
        assert histogram.bucket_index(1.5) == 1
        assert histogram.bucket_index(3.0) == 2

    def test_upper_bound_inverts_index(self):
        histogram = LatencyHistogram()
        for value in (1e-6, 3.7e-4, 0.01, 1.0, 17.0):
            index = histogram.bucket_index(value)
            assert value <= histogram.bucket_upper_bound(index) * (1 + 1e-9)
            if index > 1:
                assert value > histogram.bucket_upper_bound(index - 1) * (1 - 1e-9)

    def test_negative_values_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.count == 1
        assert histogram.min == 0.0
        assert histogram.sum == 0.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)


class TestPercentiles:
    def test_empty_histogram_raises_typed_error(self):
        histogram = LatencyHistogram()
        with pytest.raises(EmptyHistogramError):
            histogram.percentile(50)
        for accessor in ("p50", "p90", "p99"):
            with pytest.raises(EmptyHistogramError):
                getattr(histogram, accessor)
        assert histogram.mean == 0.0

    def test_empty_histogram_serializes_placeholder(self):
        # to_dict must stay exception-free: empty percentiles are the
        # documented 0.0 placeholder with count disambiguating.
        data = LatencyHistogram().to_dict()
        assert data["count"] == 0
        assert data["p50"] == data["p90"] == data["p99"] == 0.0
        restored = LatencyHistogram.from_dict(data)
        with pytest.raises(EmptyHistogramError):
            restored.percentile(99)

    def test_single_value(self):
        histogram = LatencyHistogram()
        histogram.record(0.125)
        # With one observation every percentile is that value (the bucket
        # bound clamps to the observed max).
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 0.125

    def test_p100_is_exact_max(self):
        histogram = LatencyHistogram()
        values = [0.001 * i for i in range(1, 200)]
        histogram.record_many(values)
        assert histogram.percentile(100) == max(values)
        assert histogram.max == max(values)

    def test_rejects_out_of_range(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.percentile(101)
        with pytest.raises(ValueError):
            histogram.percentile(-1)

    @pytest.mark.parametrize("seed", [7, 42, 2003])
    @pytest.mark.parametrize("p", [50, 90, 99])
    def test_percentile_vs_sorted_reference(self, seed, p):
        """Reported percentile is an upper bound on the true one within
        one bucket's relative resolution (factor ``growth``)."""
        rng = random.Random(seed)
        values = [rng.lognormvariate(mu=-7.0, sigma=2.0) for _ in range(5000)]
        histogram = LatencyHistogram()
        histogram.record_many(values)
        ordered = sorted(values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        true_value = ordered[rank - 1]
        reported = histogram.percentile(p)
        assert reported >= true_value * (1 - 1e-9)
        assert reported <= true_value * histogram.growth * (1 + 1e-9)

    def test_mean_and_sum_are_exact(self):
        histogram = LatencyHistogram()
        values = [0.5, 1.5, 2.0]
        histogram.record_many(values)
        assert histogram.sum == pytest.approx(4.0)
        assert histogram.mean == pytest.approx(4.0 / 3.0)


class TestMergeAndSerialization:
    def test_merge_matches_combined_recording(self):
        rng = random.Random(11)
        values_a = [rng.random() for _ in range(300)]
        values_b = [rng.random() * 10 for _ in range(200)]
        merged = LatencyHistogram()
        merged.record_many(values_a)
        other = LatencyHistogram()
        other.record_many(values_b)
        merged.merge(other)
        reference = LatencyHistogram()
        reference.record_many(values_a + values_b)
        assert merged.count == reference.count
        assert merged.sum == pytest.approx(reference.sum)
        assert merged.min == reference.min
        assert merged.max == reference.max
        for p in (50, 90, 99):
            assert merged.percentile(p) == reference.percentile(p)

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LatencyHistogram(growth=2.0).merge(LatencyHistogram(growth=4.0))

    def test_round_trip(self):
        histogram = LatencyHistogram()
        histogram.record_many([1e-6, 3e-4, 0.02, 0.02, 1.5])
        restored = LatencyHistogram.from_dict(histogram.to_dict())
        assert restored.count == histogram.count
        assert restored.min == histogram.min
        assert restored.max == histogram.max
        assert restored.sum == pytest.approx(histogram.sum)
        for p in (50, 90, 99, 100):
            assert restored.percentile(p) == histogram.percentile(p)

    def test_to_dict_includes_headline_percentiles(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        data = histogram.to_dict()
        assert data["p50"] == histogram.p50
        assert data["p99"] == histogram.p99
        assert data["buckets"]  # str keys, JSON-safe
        assert all(isinstance(k, str) for k in data["buckets"])


class TestHistogramSet:
    def test_get_creates_and_reuses(self):
        hset = HistogramSet()
        first = hset.get("out_neighborhood")
        first.record(0.1)
        assert hset.get("out_neighborhood") is first
        assert "out_neighborhood" in hset
        assert len(hset) == 1

    def test_observe_and_names(self):
        hset = HistogramSet()
        hset.observe("b_op", 0.1)
        hset.observe("a_op", 0.2)
        assert hset.names() == ["a_op", "b_op"]

    def test_time_context_records(self):
        hset = HistogramSet()
        with hset.time("timed"):
            pass
        assert hset.get("timed").count == 1

    def test_round_trip(self):
        hset = HistogramSet()
        hset.observe("x", 0.5)
        hset.observe("x", 1.5)
        hset.observe("y", 0.01)
        restored = HistogramSet.from_dict(hset.to_dict())
        assert restored.names() == ["x", "y"]
        assert restored.get("x").count == 2
        assert restored.get("y").max == hset.get("y").max

    def test_clear(self):
        hset = HistogramSet()
        hset.observe("x", 1.0)
        hset.clear()
        assert len(hset) == 0
