"""Bench reports: round-trip, validation, and regression diffing."""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ReportError
from repro.obs.histogram import HistogramSet
from repro.obs.report import (
    SCHEMA_VERSION,
    build_report,
    diff_reports,
    flatten_numeric,
    load_report,
    main as report_main,
    report_filename,
    validate_report,
    write_report,
)


def sample_report(experiment: str = "queries", wall_ms: float = 10.0) -> dict:
    histograms = HistogramSet()
    histograms.observe("s-node/out_neighborhood", wall_ms / 1000.0)
    return build_report(
        experiment,
        results=[{"query": "query1", "wall_ms": wall_ms, "num_rows": 5}],
        params={"scale_factor": 1.0},
        metrics={"disk_seeks": 12},
        histograms=histograms.to_dict(),
        spans={"build.refine": {"count": 1, "total_s": 0.5}},
    )


class TestBuildAndRoundTrip:
    def test_build_report_is_valid(self):
        report = sample_report()
        assert validate_report(report) == []
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["experiment"] == "queries"
        assert report["created_unix"] > 0

    def test_write_load_round_trip(self, tmp_path):
        report = sample_report()
        path = write_report(report, tmp_path)
        assert path.name == "BENCH_queries.json"
        assert load_report(path) == report

    def test_report_filename_sanitizes(self):
        assert report_filename("a/b c") == "BENCH_a_b_c.json"

    def test_write_refuses_invalid(self, tmp_path):
        report = sample_report()
        del report["metrics"]
        with pytest.raises(ReportError):
            write_report(report, tmp_path)

    def test_build_refuses_empty_experiment(self):
        with pytest.raises(ReportError):
            build_report("", results=[])


class TestValidation:
    def test_missing_key_reported(self):
        report = sample_report()
        del report["histograms"]
        problems = validate_report(report)
        assert any("histograms" in problem for problem in problems)

    def test_wrong_schema_version(self):
        report = sample_report()
        report["schema_version"] = SCHEMA_VERSION + 1
        assert any("unsupported" in p for p in validate_report(report))

    def test_wrong_types(self):
        report = sample_report()
        report["params"] = "not-a-dict"
        assert validate_report(report)
        report = sample_report()
        report["created_unix"] = "yesterday"
        assert validate_report(report)

    def test_histogram_without_buckets(self):
        report = sample_report()
        report["histograms"]["bad"] = {"count": 3}
        assert any("buckets" in p for p in validate_report(report))

    def test_non_dict_document(self):
        assert validate_report([1, 2, 3])

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.raises(ReportError):
            load_report(path)


class TestFlatten:
    def test_dotted_paths_and_list_indices(self):
        flat = flatten_numeric(
            {"a": {"b": 1.5}, "rows": [{"wall_ms": 2.0}, {"wall_ms": 3.0}]}
        )
        assert flat == {
            "a.b": 1.5,
            "rows[0].wall_ms": 2.0,
            "rows[1].wall_ms": 3.0,
        }

    def test_bools_and_strings_skipped(self):
        assert flatten_numeric({"flag": True, "name": "x", "n": 2}) == {"n": 2.0}


class TestDiff:
    def test_injected_regression_flagged(self):
        old = sample_report(wall_ms=10.0)
        new = sample_report(wall_ms=15.0)  # +50%, well past the 20% gate
        diff = diff_reports(old, new, threshold=0.2)
        assert diff.regressions
        paths = {entry.path for entry in diff.regressions}
        assert "results[0].wall_ms" in paths

    def test_small_change_not_flagged(self):
        diff = diff_reports(
            sample_report(wall_ms=10.0), sample_report(wall_ms=11.0), threshold=0.2
        )
        assert diff.regressions == []

    def test_improvement_not_flagged(self):
        diff = diff_reports(
            sample_report(wall_ms=10.0), sample_report(wall_ms=2.0), threshold=0.2
        )
        assert diff.regressions == []

    def test_non_cost_keys_ignored(self):
        old = sample_report()
        new = copy.deepcopy(old)
        new["results"][0]["num_rows"] = 500  # count, not a cost
        diff = diff_reports(old, new)
        assert all("num_rows" not in entry.path for entry in diff.entries)
        assert diff.regressions == []

    def test_noise_floor_suppresses_tiny_absolute_changes(self):
        old = sample_report()
        new = copy.deepcopy(old)
        old["results"][0]["wall_ms"] = 1e-9
        new["results"][0]["wall_ms"] = 3e-9  # +200% but ~2e-9 absolute
        diff = diff_reports(old, new, threshold=0.2)
        assert diff.regressions == []

    def test_different_experiments_rejected(self):
        with pytest.raises(ReportError):
            diff_reports(sample_report("queries"), sample_report("ablations"))

    def test_render_mentions_counts(self):
        diff = diff_reports(
            sample_report(wall_ms=10.0), sample_report(wall_ms=15.0)
        )
        text = diff.render()
        assert "regression(s)" in text
        assert "REGRESSION" in text


class TestModuleCli:
    def test_validate_ok_and_invalid(self, tmp_path, capsys):
        good = write_report(sample_report(), tmp_path)
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema_version": 99}))
        assert report_main(["validate", str(good)]) == 0
        assert report_main(["validate", str(good), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_diff_exit_codes(self, tmp_path, capsys):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old = write_report(sample_report(wall_ms=10.0), old_dir)
        new = write_report(sample_report(wall_ms=15.0), new_dir)
        assert report_main(["diff", str(old), str(new)]) == 1
        assert report_main(["diff", str(old), str(old)]) == 0
        # A generous threshold lets the regressed report pass.
        assert (
            report_main(["diff", str(old), str(new), "--threshold", "0.9"]) == 0
        )
        capsys.readouterr()
