"""Bench reports: round-trip, validation, and regression diffing."""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ReportError
from repro.obs.histogram import HistogramSet
from repro.obs.report import (
    SCHEMA_VERSION,
    build_report,
    diff_reports,
    flatten_leaves,
    flatten_numeric,
    load_report,
    main as report_main,
    report_filename,
    validate_report,
    write_report,
)


def sample_report(experiment: str = "queries", wall_ms: float = 10.0) -> dict:
    histograms = HistogramSet()
    histograms.observe("s-node/out_neighborhood", wall_ms / 1000.0)
    return build_report(
        experiment,
        results=[{"query": "query1", "wall_ms": wall_ms, "num_rows": 5}],
        params={"scale_factor": 1.0},
        metrics={"disk_seeks": 12},
        histograms=histograms.to_dict(),
        spans={"build.refine": {"count": 1, "total_s": 0.5}},
    )


class TestBuildAndRoundTrip:
    def test_build_report_is_valid(self):
        report = sample_report()
        assert validate_report(report) == []
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["experiment"] == "queries"
        assert report["created_unix"] > 0

    def test_write_load_round_trip(self, tmp_path):
        report = sample_report()
        path = write_report(report, tmp_path)
        assert path.name == "BENCH_queries.json"
        assert load_report(path) == report

    def test_report_filename_sanitizes(self):
        assert report_filename("a/b c") == "BENCH_a_b_c.json"

    def test_write_refuses_invalid(self, tmp_path):
        report = sample_report()
        del report["metrics"]
        with pytest.raises(ReportError):
            write_report(report, tmp_path)

    def test_build_refuses_empty_experiment(self):
        with pytest.raises(ReportError):
            build_report("", results=[])


class TestValidation:
    def test_missing_key_reported(self):
        report = sample_report()
        del report["histograms"]
        problems = validate_report(report)
        assert any("histograms" in problem for problem in problems)

    def test_wrong_schema_version(self):
        report = sample_report()
        report["schema_version"] = SCHEMA_VERSION + 1
        assert any("unsupported" in p for p in validate_report(report))

    def test_wrong_types(self):
        report = sample_report()
        report["params"] = "not-a-dict"
        assert validate_report(report)
        report = sample_report()
        report["created_unix"] = "yesterday"
        assert validate_report(report)

    def test_histogram_without_buckets(self):
        report = sample_report()
        report["histograms"]["bad"] = {"count": 3}
        assert any("buckets" in p for p in validate_report(report))

    def test_non_dict_document(self):
        assert validate_report([1, 2, 3])

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.raises(ReportError):
            load_report(path)


class TestFlatten:
    def test_dotted_paths_and_list_indices(self):
        flat = flatten_numeric(
            {"a": {"b": 1.5}, "rows": [{"wall_ms": 2.0}, {"wall_ms": 3.0}]}
        )
        assert flat == {
            "a.b": 1.5,
            "rows[0].wall_ms": 2.0,
            "rows[1].wall_ms": 3.0,
        }

    def test_bools_and_strings_skipped(self):
        assert flatten_numeric({"flag": True, "name": "x", "n": 2}) == {"n": 2.0}

    def test_flatten_leaves_keeps_every_type(self):
        flat = flatten_leaves(
            {"digest": "abc", "flag": True, "rows": [{"n": 2}]}
        )
        assert flat == {"digest": "abc", "flag": True, "rows[0].n": 2}


class TestDiff:
    def test_injected_regression_flagged(self):
        old = sample_report(wall_ms=10.0)
        new = sample_report(wall_ms=15.0)  # +50%, well past the 20% gate
        diff = diff_reports(old, new, threshold=0.2)
        assert diff.regressions
        paths = {entry.path for entry in diff.regressions}
        assert "results[0].wall_ms" in paths

    def test_small_change_not_flagged(self):
        diff = diff_reports(
            sample_report(wall_ms=10.0), sample_report(wall_ms=11.0), threshold=0.2
        )
        assert diff.regressions == []

    def test_improvement_not_flagged(self):
        diff = diff_reports(
            sample_report(wall_ms=10.0), sample_report(wall_ms=2.0), threshold=0.2
        )
        assert diff.regressions == []

    def test_non_cost_keys_ignored(self):
        old = sample_report()
        new = copy.deepcopy(old)
        new["results"][0]["num_rows"] = 500  # count, not a cost
        diff = diff_reports(old, new)
        assert all("num_rows" not in entry.path for entry in diff.entries)
        assert diff.regressions == []

    def test_noise_floor_suppresses_tiny_absolute_changes(self):
        old = sample_report()
        new = copy.deepcopy(old)
        old["results"][0]["wall_ms"] = 1e-9
        new["results"][0]["wall_ms"] = 3e-9  # +200% but ~2e-9 absolute
        diff = diff_reports(old, new, threshold=0.2)
        assert diff.regressions == []

    def test_different_experiments_rejected(self):
        with pytest.raises(ReportError):
            diff_reports(sample_report("queries"), sample_report("ablations"))

    def test_render_mentions_counts(self):
        diff = diff_reports(
            sample_report(wall_ms=10.0), sample_report(wall_ms=15.0)
        )
        text = diff.render()
        assert "regression(s)" in text
        assert "REGRESSION" in text


def build_bench_report(digest: str = "abc123", shards: int = 8) -> dict:
    """A BENCH_build-shaped report: string digest + shard count leaves."""
    return build_report(
        "build",
        results=[
            {"workers": 2, "shards": shards, "encode_s": 1.5, "digest": digest}
        ],
        params={"cpu_count": 1},
    )


class TestExactDiff:
    def test_matching_exact_paths_pass(self):
        diff = diff_reports(
            build_bench_report(), build_bench_report(), exact=("digest", "shards")
        )
        assert len(diff.exact_entries) == 2
        assert diff.exact_mismatches == []
        assert not diff.failed

    def test_string_digest_mismatch_fails(self):
        diff = diff_reports(
            build_bench_report("abc123"),
            build_bench_report("def456"),
            exact=("digest",),
        )
        assert diff.failed
        assert [e.path for e in diff.exact_mismatches] == ["results[0].digest"]
        assert "MISMATCH" in diff.render()

    def test_numeric_exact_mismatch_fails_even_below_threshold(self):
        # shards 8 -> 9 is +12.5%, under the 20% cost threshold — but an
        # exact pin tolerates no drift at all.
        diff = diff_reports(
            build_bench_report(shards=8),
            build_bench_report(shards=9),
            threshold=0.2,
            exact=("shards",),
        )
        assert diff.failed

    def test_exact_path_exempt_from_ignore_and_cost_diff(self):
        old = build_bench_report()
        new = copy.deepcopy(old)
        new["results"][0]["encode_s"] = 99.0  # wall-clock: ignored
        new["results"][0]["digest"] = "zzz"  # determinism: pinned
        diff = diff_reports(
            old, new, ignore=("encode_s", "digest"), exact=("digest",)
        )
        assert diff.regressions == []
        assert diff.failed  # the digest pin wins over --ignore
        assert all("encode_s" not in e.path for e in diff.entries)

    def test_path_missing_from_one_report_is_mismatch(self):
        old = build_bench_report()
        new = copy.deepcopy(old)
        del new["results"][0]["digest"]
        diff = diff_reports(old, new, exact=("digest",))
        assert diff.failed
        assert "<missing>" in repr(diff.exact_mismatches[0].new)

    def test_exact_cost_path_not_double_counted(self):
        # Pinning a cost leaf moves it out of the threshold comparison.
        old = build_bench_report()
        new = copy.deepcopy(old)
        new["results"][0]["encode_s"] = 99.0
        diff = diff_reports(old, new, exact=("encode_s",))
        assert all("encode_s" not in e.path for e in diff.entries)
        assert diff.failed  # but the pin still catches the change


class TestModuleCli:
    def test_validate_ok_and_invalid(self, tmp_path, capsys):
        good = write_report(sample_report(), tmp_path)
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema_version": 99}))
        assert report_main(["validate", str(good)]) == 0
        assert report_main(["validate", str(good), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_diff_exit_codes(self, tmp_path, capsys):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old = write_report(sample_report(wall_ms=10.0), old_dir)
        new = write_report(sample_report(wall_ms=15.0), new_dir)
        assert report_main(["diff", str(old), str(new)]) == 1
        assert report_main(["diff", str(old), str(old)]) == 0
        # A generous threshold lets the regressed report pass.
        assert (
            report_main(["diff", str(old), str(new), "--threshold", "0.9"]) == 0
        )
        capsys.readouterr()

    def test_diff_exact_flag_gates_digests(self, tmp_path, capsys):
        old = write_report(build_bench_report("aaa"), tmp_path / "old")
        new = write_report(build_bench_report("bbb"), tmp_path / "new")
        assert report_main(["diff", str(old), str(new)]) == 0
        assert (
            report_main(["diff", str(old), str(new), "--exact", "digest"]) == 1
        )
        capsys.readouterr()
