"""Tests for clustered split (supernode-adjacency vectors + k-means)."""

from __future__ import annotations

import random


from repro.graph.digraph import Digraph
from repro.partition.clustered_split import (
    ClusteredSplitConfig,
    clustered_split,
    supernode_adjacency_vectors,
)
from repro.partition.partition import Element, Partition


def two_camp_world() -> tuple[Digraph, Partition]:
    """Pages 0-9: half point into element B, half into element C.

    Element A = pages 0..9, B = 10..14, C = 15..19.
    """
    edges = []
    for page in range(0, 5):
        edges += [(page, 10), (page, 11)]
    for page in range(5, 10):
        edges += [(page, 15), (page, 16)]
    graph = Digraph.from_edges(20, edges)
    partition = Partition(
        20,
        [
            Element(pages=tuple(range(0, 10)), domain="a"),
            Element(pages=tuple(range(10, 15)), domain="b"),
            Element(pages=tuple(range(15, 20)), domain="c"),
        ],
    )
    return graph, partition


class TestAdjacencyVectors:
    def test_vectors_reflect_target_supernodes(self):
        graph, partition = two_camp_world()
        element = partition.element(0)
        vectors, neighbors = supernode_adjacency_vectors(
            element, graph, partition.assignment(), 0
        )
        assert vectors.shape == (10, 2)
        assert sorted(neighbors) == [1, 2]
        # Pages 0-4 share one pattern, 5-9 the other.
        assert len({tuple(v) for v in vectors[:5].tolist()}) == 1
        assert len({tuple(v) for v in vectors[5:].tolist()}) == 1
        assert tuple(vectors[0]) != tuple(vectors[9])

    def test_intra_element_links_excluded(self):
        graph = Digraph.from_edges(4, [(0, 1), (1, 0), (0, 2)])
        partition = Partition(
            4,
            [
                Element(pages=(0, 1), domain="a"),
                Element(pages=(2, 3), domain="b"),
            ],
        )
        vectors, neighbors = supernode_adjacency_vectors(
            partition.element(0), graph, partition.assignment(), 0
        )
        assert neighbors == [1]
        assert vectors[0, 0] == 1  # page 0 -> element 1
        assert vectors[1, 0] == 0  # page 1 only links inside its element


class TestClusteredSplit:
    def config(self) -> ClusteredSplitConfig:
        return ClusteredSplitConfig(min_cluster_size=1, time_bound_seconds=5.0)

    def test_splits_two_camps(self):
        graph, partition = two_camp_world()
        children = clustered_split(
            partition.element(0),
            graph,
            partition.assignment(),
            0,
            random.Random(0),
            self.config(),
        )
        assert children is not None
        assert len(children) == 2
        camps = sorted(tuple(c.pages) for c in children)
        assert camps == [tuple(range(0, 5)), tuple(range(5, 10))]

    def test_identical_vectors_abort(self):
        # All pages of the element point to the same outside target.
        edges = [(p, 4) for p in range(4)]
        graph = Digraph.from_edges(5, edges)
        partition = Partition(
            5,
            [
                Element(pages=(0, 1, 2, 3), domain="a"),
                Element(pages=(4,), domain="b"),
            ],
        )
        result = clustered_split(
            partition.element(0), graph, partition.assignment(), 0,
            random.Random(0), self.config(),
        )
        assert result is None

    def test_singleton_element_aborts(self):
        graph = Digraph.from_edges(2, [(0, 1)])
        partition = Partition(
            2, [Element(pages=(0,), domain="a"), Element(pages=(1,), domain="b")]
        )
        result = clustered_split(
            partition.element(0), graph, partition.assignment(), 0,
            random.Random(0), self.config(),
        )
        assert result is None

    def test_children_cover_element(self):
        graph, partition = two_camp_world()
        children = clustered_split(
            partition.element(0), graph, partition.assignment(), 0,
            random.Random(1), self.config(),
        )
        covered = sorted(p for c in children for p in c.pages)
        assert covered == list(range(0, 10))

    def test_timeout_escalation_aborts(self):
        graph, partition = two_camp_world()
        config = ClusteredSplitConfig(
            time_bound_seconds=0.0, max_attempts=2, min_cluster_size=1,
            max_iterations=500,
        )
        # With a zero time bound k-means cannot converge -> abort (None).
        result = clustered_split(
            partition.element(0), graph, partition.assignment(), 0,
            random.Random(0), config,
        )
        assert result is None
