"""Tests for URL split."""

from __future__ import annotations

from repro.partition.partition import Element
from repro.partition.url_split import (
    MAX_URL_SPLIT_DEPTH,
    mark_url_exhausted,
    url_split,
)

URLS = [
    "http://a.com/x/p0.html",      # 0
    "http://a.com/x/p1.html",      # 1
    "http://a.com/y/p2.html",      # 2
    "http://a.com/y/q/p3.html",    # 3
    "http://a.com/y/q/p4.html",    # 4
    "http://a.com/p5.html",        # 5
]


def element_of_all(url_depth: int = 0) -> Element:
    return Element(pages=tuple(range(6)), domain="a.com", url_depth=url_depth)


class TestUrlSplit:
    def test_splits_on_first_directory_level(self):
        children = url_split(element_of_all(), URLS)
        assert children is not None
        groups = sorted(tuple(c.pages) for c in children)
        # prefix "a.com" (root pages), "a.com/x", "a.com/y"
        assert groups == [(0, 1), (2, 3, 4), (5,)]

    def test_children_record_deeper_depth(self):
        children = url_split(element_of_all(), URLS)
        assert all(c.url_depth == 1 for c in children)

    def test_single_group_returns_none(self):
        element = Element(pages=(0, 1), domain="a.com", url_depth=1)
        assert url_split(element, URLS) is None  # both under a.com/x

    def test_depth_three_marks_exhausted(self):
        urls = [
            "http://a.com/l1/l2/l3a/p.html",
            "http://a.com/l1/l2/l3b/p.html",
        ]
        element = Element(pages=(0, 1), domain="a.com", url_depth=2)
        children = url_split(element, urls)
        assert children is not None
        assert all(c.url_split_exhausted for c in children)
        assert all(c.url_depth == MAX_URL_SPLIT_DEPTH for c in children)

    def test_coalescing_merges_small_groups(self):
        children = url_split(element_of_all(), URLS, min_group_size=3)
        assert children is not None
        assert all(len(c.pages) >= 3 for c in children[:-1])
        total = sorted(p for c in children for p in c.pages)
        assert total == list(range(6))

    def test_coalescing_to_single_group_returns_none(self):
        children = url_split(element_of_all(), URLS, min_group_size=100)
        assert children is None

    def test_mark_url_exhausted(self):
        element = element_of_all()
        marked = mark_url_exhausted(element)
        assert marked.url_split_exhausted
        assert marked.pages == element.pages
