"""Tests for the iterative refinement driver."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.partition.clustered_split import ClusteredSplitConfig
from repro.partition.refine import RefinementConfig, refine_partition


def fast_config(**overrides) -> RefinementConfig:
    defaults = dict(
        seed=3,
        min_element_size=32,
        min_url_group_size=12,
        min_abortmax=48,
        clustered=ClusteredSplitConfig(min_cluster_size=12),
    )
    defaults.update(overrides)
    return RefinementConfig(**defaults)


class TestRefinement:
    def test_produces_valid_partition(self, small_repo):
        result = refine_partition(small_repo, fast_config())
        partition = result.partition
        assert partition.num_pages == small_repo.num_pages
        covered = sorted(
            page for element in partition.elements() for page in element.pages
        )
        assert covered == list(range(small_repo.num_pages))

    def test_property2_same_domain_per_element(self, small_repo):
        # Paper Property 2: every element's pages share one domain.
        result = refine_partition(small_repo, fast_config())
        for element in result.partition.elements():
            domains = {small_repo.page(p).domain for p in element.pages}
            assert len(domains) == 1
            assert element.domain in domains

    def test_refines_beyond_domain_partition(self, small_repo):
        result = refine_partition(small_repo, fast_config())
        num_domains = len(small_repo.domains())
        assert result.partition.num_elements >= num_domains
        assert result.url_splits > 0

    def test_deterministic_under_seed(self, small_repo):
        a = refine_partition(small_repo, fast_config())
        b = refine_partition(small_repo, fast_config())
        assert [e.pages for e in a.partition.elements()] == [
            e.pages for e in b.partition.elements()
        ]

    def test_largest_policy_also_terminates(self, small_repo):
        result = refine_partition(small_repo, fast_config(policy="largest"))
        assert result.stop_reason
        assert result.partition.num_pages == small_repo.num_pages

    def test_policies_produce_comparable_granularity(self, small_repo):
        # The paper found random vs largest-first "almost identical".
        random_result = refine_partition(small_repo, fast_config())
        largest_result = refine_partition(small_repo, fast_config(policy="largest"))
        ratio = random_result.num_elements / max(1, largest_result.num_elements)
        assert 0.4 <= ratio <= 2.5

    def test_unknown_policy_rejected(self, small_repo):
        with pytest.raises(PartitionError):
            refine_partition(small_repo, fast_config(policy="sideways"))

    def test_stop_reason_recorded(self, small_repo):
        result = refine_partition(small_repo, fast_config())
        assert "abort" in result.stop_reason or "unsplittable" in result.stop_reason

    def test_iteration_cap(self, small_repo):
        result = refine_partition(small_repo, fast_config(max_iterations=5))
        assert result.iterations <= 5
        assert result.stop_reason == "iteration cap reached"

    def test_initial_partition_respected(self, small_repo):
        from repro.partition.partition import Partition

        initial = Partition.by_domain([p.domain for p in small_repo.pages])
        result = refine_partition(small_repo, fast_config(), initial=initial)
        assert result.partition.num_elements >= initial.num_elements
