"""Tests for the Partition data type."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.partition.partition import Element, Partition, split_element


class TestElement:
    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Element(pages=(), domain="a.com")

    def test_unsorted_rejected(self):
        with pytest.raises(PartitionError):
            Element(pages=(2, 1), domain="a.com")

    def test_duplicates_rejected(self):
        with pytest.raises(PartitionError):
            Element(pages=(1, 1), domain="a.com")

    def test_len(self):
        assert len(Element(pages=(0, 3, 5), domain="a.com")) == 3


class TestPartition:
    def test_trivial_partition(self):
        partition = Partition.trivial(5)
        assert partition.num_elements == 1
        assert partition.element_of(3) == 0

    def test_overlap_rejected(self):
        with pytest.raises(PartitionError):
            Partition(
                3,
                [
                    Element(pages=(0, 1), domain=""),
                    Element(pages=(1, 2), domain=""),
                ],
            )

    def test_uncovered_pages_rejected(self):
        with pytest.raises(PartitionError):
            Partition(3, [Element(pages=(0, 1), domain="")])

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            Partition(2, [Element(pages=(0, 1, 5), domain="")])

    def test_by_domain_groups_correctly(self):
        domains = ["a.com", "b.com", "a.com", "b.com", "a.com"]
        partition = Partition.by_domain(domains)
        assert partition.num_elements == 2
        groups = {e.domain: e.pages for e in partition.elements()}
        assert groups["a.com"] == (0, 2, 4)
        assert groups["b.com"] == (1, 3)

    def test_from_assignment(self):
        partition = Partition.from_assignment([0, 1, 0, 2])
        assert partition.sizes() == [2, 1, 1]

    def test_assignment_roundtrip(self):
        partition = Partition.from_assignment([1, 0, 1, 1])
        assignment = partition.assignment()
        rebuilt = Partition.from_assignment(assignment)
        assert [e.pages for e in rebuilt.elements()] == [
            e.pages for e in partition.elements()
        ]

    def test_element_of_out_of_range(self):
        with pytest.raises(PartitionError):
            Partition.trivial(3).element_of(7)


class TestReplaceElement:
    def test_refinement_step(self):
        partition = Partition.by_domain(["a", "a", "a", "b"])
        index = next(
            i for i, e in enumerate(partition.elements()) if e.domain == "a"
        )
        pieces = [
            Element(pages=(0,), domain="a"),
            Element(pages=(1, 2), domain="a"),
        ]
        refined = partition.replace_element(index, pieces)
        assert refined.num_elements == 3
        assert refined.element_of(0) != refined.element_of(1)
        assert refined.element_of(1) == refined.element_of(2)

    def test_pieces_must_cover_exactly(self):
        partition = Partition.trivial(3)
        with pytest.raises(PartitionError):
            partition.replace_element(0, [Element(pages=(0, 1), domain="")])
        with pytest.raises(PartitionError):
            partition.replace_element(
                0,
                [
                    Element(pages=(0, 1), domain=""),
                    Element(pages=(1, 2), domain=""),
                ],
            )


class TestSplitElement:
    def test_inherits_metadata(self):
        element = Element(pages=(0, 1, 2), domain="a.com", url_depth=1)
        children = split_element(element, [[0], [1, 2]])
        assert all(c.domain == "a.com" for c in children)
        assert all(c.url_depth == 1 for c in children)

    def test_overrides_metadata(self):
        element = Element(pages=(0, 1), domain="a.com")
        children = split_element(
            element, [[0], [1]], url_depth=2, url_split_exhausted=True
        )
        assert all(c.url_depth == 2 and c.url_split_exhausted for c in children)

    def test_skips_empty_groups(self):
        element = Element(pages=(0, 1), domain="a.com")
        children = split_element(element, [[], [0, 1]])
        assert len(children) == 1

    def test_all_empty_rejected(self):
        element = Element(pages=(0,), domain="a.com")
        with pytest.raises(PartitionError):
            split_element(element, [[]])
