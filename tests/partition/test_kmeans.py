"""Tests for the time-bounded binary k-means."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition.kmeans import kmeans_binary


def separable_data(rng: random.Random, per_cluster: int = 30) -> np.ndarray:
    """Three well-separated binary clusters in 9 dimensions."""
    rows = []
    for cluster in range(3):
        base = np.zeros(9, dtype=np.int8)
        base[cluster * 3 : cluster * 3 + 3] = 1
        for _ in range(per_cluster):
            row = base.copy()
            flip = rng.randrange(9)
            if rng.random() < 0.1:
                row[flip] ^= 1
            rows.append(row)
    return np.array(rows)


class TestKMeans:
    def test_recovers_separable_clusters(self):
        rng = random.Random(0)
        data = separable_data(rng)
        result = kmeans_binary(data, k=3, rng=rng, time_bound_seconds=5.0)
        assert result.converged
        # Pages of the same true cluster should mostly share a label.
        for cluster in range(3):
            labels = result.labels[cluster * 30 : (cluster + 1) * 30]
            dominant = np.bincount(labels).max()
            assert dominant >= 24

    def test_k_equals_one(self):
        rng = random.Random(1)
        data = separable_data(rng)
        result = kmeans_binary(data, k=1, rng=rng)
        assert result.converged
        assert set(result.labels) == {0}

    def test_k_equals_n(self):
        rng = random.Random(2)
        data = np.eye(6, dtype=np.int8)
        result = kmeans_binary(data, k=6, rng=rng, time_bound_seconds=5.0)
        assert result.converged
        assert len(set(result.labels.tolist())) == 6

    def test_invalid_k(self):
        data = np.zeros((4, 2), dtype=np.int8)
        with pytest.raises(PartitionError):
            kmeans_binary(data, k=0, rng=random.Random(0))
        with pytest.raises(PartitionError):
            kmeans_binary(data, k=5, rng=random.Random(0))

    def test_invalid_shape(self):
        with pytest.raises(PartitionError):
            kmeans_binary(np.zeros(5), k=1, rng=random.Random(0))

    def test_time_bound_reports_non_convergence(self):
        rng = random.Random(3)
        data = np.array(
            [[rng.randrange(2) for _ in range(24)] for _ in range(400)],
            dtype=np.int8,
        )
        result = kmeans_binary(
            data, k=12, rng=rng, time_bound_seconds=0.0, max_iterations=500
        )
        assert not result.converged

    def test_deterministic_under_seed(self):
        data = separable_data(random.Random(4))
        a = kmeans_binary(data, k=3, rng=random.Random(7), time_bound_seconds=5.0)
        b = kmeans_binary(data, k=3, rng=random.Random(7), time_bound_seconds=5.0)
        assert np.array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_more_clusters(self):
        data = separable_data(random.Random(5))
        one = kmeans_binary(data, k=1, rng=random.Random(0), time_bound_seconds=5.0)
        three = kmeans_binary(data, k=3, rng=random.Random(0), time_bound_seconds=5.0)
        assert three.inertia < one.inertia
