"""Tests for the PageRank index."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.index.pagerank_index import PageRankIndex
from repro.webdata.corpus import Repository


@pytest.fixture()
def index():
    # Star: everyone points at page 0.
    urls = [f"http://a.com/p{i}.html" for i in range(6)]
    edges = [(i, 0) for i in range(1, 6)]
    return PageRankIndex(Repository.from_parts(urls, edges))


class TestPageRankIndex:
    def test_hub_has_top_score(self, index):
        assert index.score(0) == max(index.score(i) for i in range(6))

    def test_normalized_max_is_one(self, index):
        assert index.normalized(0) == pytest.approx(1.0)
        assert 0.0 < index.normalized(3) < 1.0

    def test_scores_sum_to_one(self, index):
        assert sum(index.score(i) for i in range(6)) == pytest.approx(1.0)

    def test_top_k(self, index):
        top = index.top_k(range(6), 3)
        assert len(top) == 3
        assert top[0] == 0

    def test_top_k_restricted_pool(self, index):
        assert index.top_k([3, 4], 1)[0] in (3, 4)

    def test_rank_order_descending(self, index):
        order = index.rank_order(range(6))
        scores = [index.score(p) for p in order]
        assert scores == sorted(scores, reverse=True)

    def test_out_of_range(self, index):
        with pytest.raises(QueryError):
            index.score(100)

    def test_negative_k_rejected(self, index):
        with pytest.raises(QueryError):
            index.top_k([0], -1)

    def test_on_generated_repo(self, small_repo):
        index = PageRankIndex(small_repo)
        assert index.scores.sum() == pytest.approx(1.0)
