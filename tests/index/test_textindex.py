"""Tests for the positional inverted index."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.index.textindex import TextIndex
from repro.webdata.corpus import Repository


@pytest.fixture()
def index():
    urls = [f"http://a.com/p{i}.html" for i in range(5)]
    terms = [
        ("mobile", "networking", "is", "fun"),
        ("networking", "mobile", "devices"),          # reversed: no phrase
        ("the", "mobile", "networking", "lab"),
        ("peanuts", "and", "snoopy"),
        (),
    ]
    repo = Repository.from_parts(urls, [], terms)
    return TextIndex(repo)


class TestTermLookup:
    def test_pages_with_term(self, index):
        assert index.pages_with_term("mobile") == {0, 1, 2}

    def test_case_insensitive(self, index):
        assert index.pages_with_term("MOBILE") == {0, 1, 2}

    def test_unknown_term_empty(self, index):
        assert index.pages_with_term("quantum") == set()

    def test_document_frequency(self, index):
        assert index.document_frequency("snoopy") == 1

    def test_num_terms(self, index):
        assert index.num_terms == 10


class TestConjunction:
    def test_all_terms(self, index):
        assert index.pages_with_all(["mobile", "networking"]) == {0, 1, 2}

    def test_empty_conjunction_rejected(self, index):
        with pytest.raises(QueryError):
            index.pages_with_all([])

    def test_disjoint_terms(self, index):
        assert index.pages_with_all(["mobile", "snoopy"]) == set()


class TestPhrase:
    def test_phrase_requires_adjacency_in_order(self, index):
        assert index.pages_with_phrase(["mobile", "networking"]) == {0, 2}

    def test_single_word_phrase(self, index):
        assert index.pages_with_phrase(["snoopy"]) == {3}

    def test_empty_phrase_rejected(self, index):
        with pytest.raises(QueryError):
            index.pages_with_phrase([])

    def test_three_word_phrase(self):
        urls = ["http://a.com/x", "http://a.com/y"]
        terms = [
            ("computer", "music", "synthesis"),
            ("computer", "music", "and", "synthesis"),
        ]
        index = TextIndex(Repository.from_parts(urls, [], terms))
        assert index.pages_with_phrase(["computer", "music", "synthesis"]) == {0}

    def test_repeated_words_in_page(self):
        urls = ["http://a.com/x"]
        terms = [("a", "b", "a", "b", "c")]
        index = TextIndex(Repository.from_parts(urls, [], terms))
        assert index.pages_with_phrase(["b", "a"]) == {0}
        assert index.pages_with_phrase(["b", "c"]) == {0}
        assert index.pages_with_phrase(["c", "a"]) == set()


class TestAtLeastK:
    def test_two_of_three_words(self, index):
        words = ("mobile", "networking", "snoopy")
        assert index.pages_with_at_least(words, 2) == {0, 1, 2}

    def test_phrase_entries_count_once(self):
        urls = ["http://a.com/x", "http://a.com/y"]
        terms = [
            ("charlie", "brown", "peanuts"),
            ("charlie", "is", "brown"),  # no "charlie brown" phrase
        ]
        index = TextIndex(Repository.from_parts(urls, [], terms))
        hits = index.pages_with_at_least(("charlie brown", "peanuts"), 2)
        assert hits == {0}

    def test_invalid_k(self, index):
        with pytest.raises(QueryError):
            index.pages_with_at_least(("a",), 0)

    def test_k_greater_than_entries(self, index):
        assert index.pages_with_at_least(("mobile",), 2) == set()
