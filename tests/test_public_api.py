"""The package's top-level public surface stays importable and complete."""

from __future__ import annotations

import repro


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_end_to_end_through_public_api(tmp_path):
    repository = repro.generate_web(num_pages=200, seed=1)
    build = repro.build_snode(repository, tmp_path, repro.BuildOptions())
    representation = repro.SNodeRepresentation(build)
    assert representation.num_pages == 200
    assert representation.out_neighbors(5) == repository.graph.successors_list(5)
    engine = repro.QueryEngine(
        repository,
        repro.TextIndex(repository),
        repro.PageRankIndex(repository),
        representation,
    )
    assert engine.pages_in_domain("stanford.edu") is not None
    representation.close()
