"""End-to-end tests for the daemon's serving telemetry.

Request-id echo, per-request phase breakdowns, the ``metrics`` op,
deterministic backpressure accounting and the conservation properties
the observability layer promises.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.serve import protocol
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon
from repro.serve.loadgen import ServeClient, run_load
from repro.serve.telemetry import PHASES


@pytest.fixture
def daemon(serve_context):
    """A running daemon on a free port (per test: telemetry starts clean)."""
    handle = DaemonHandle(
        GraphQueryDaemon(serve_context, port=0, workers=4, queue_limit=16)
    )
    with handle:
        yield handle


class TestRequestIds:
    def test_client_rid_is_echoed(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("query", name="query1", rid="mine-42")
            assert reply["server"]["rid"] == "mine-42"

    def test_numeric_rid_is_echoed_as_string(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("ping", rid=7)
            assert reply["server"]["rid"] == "7"

    def test_missing_rid_gets_a_generated_one(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            first = client.request("ping")["server"]["rid"]
            second = client.request("ping")["server"]["rid"]
        assert first.startswith("srv-")
        assert second.startswith("srv-")
        assert first != second

    def test_error_replies_carry_the_rid_too(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("frobnicate", rid="bad-1")
            assert reply["ok"] is False
            assert reply["server"]["rid"] == "bad-1"
            assert reply["server"]["outcome"] == "bad_request"


class TestPhaseBreakdown:
    def test_query_reply_reports_lifecycle_phases(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("query", name="query1", rid="r1")
        server = reply["server"]
        assert server["outcome"] == "ok"
        phases = server["phases_us"]
        # Encode/reply are measured around the reply write itself, so
        # the echoed view carries the phases known at encode time.
        for phase in ("decode", "queue_wait", "execute"):
            assert phase in phases
            assert phases[phase] >= 0
        assert set(phases) <= set(PHASES)

    def test_server_latency_bounded_by_client_latency(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            start = time.perf_counter()
            reply = client.request("query", name="query1")
            client_s = time.perf_counter() - start
        server_s = sum(reply["server"]["phases_us"].values()) / 1e6
        assert 0 <= server_s <= client_s

    def test_query_reply_attributes_session_counters(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            counters = client.request("query", name="query1")["server"][
                "counters"
            ]
        # The shared pool may already be warm (session-scoped context),
        # so the query may be all hits — but it always touches buffers.
        assert counters["buffer_hits"] + counters["buffer_misses"] > 0
        assert counters["bytes_read"] >= 0
        # Inline ops do no I/O and attribute nothing.
        with ServeClient("127.0.0.1", daemon.port) as client:
            assert client.request("ping")["server"]["counters"] == {}

    def test_full_record_lands_in_the_access_log(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request("query", name="query1", rid="logged-1")
        # The record is folded in right after the reply bytes flush, so
        # the client can hold the reply a beat before the log entry lands.
        deadline = time.monotonic() + 10
        while True:
            entries = {
                entry["rid"]: entry
                for entry in daemon.daemon.telemetry.access_log.entries()
            }
            if "logged-1" in entries or time.monotonic() > deadline:
                break
            time.sleep(0.01)
        entry = entries["logged-1"]
        assert entry["op"] == "query"
        assert entry["outcome"] == "ok"
        # The logged record includes the phases measured around the
        # reply write, which the echoed view cannot carry.
        assert "encode" in entry["phases_us"]
        assert "reply" in entry["phases_us"]
        # server_us rounds the seconds total; the per-phase values round
        # individually, so the two agree to within one µs per phase.
        assert abs(
            entry["server_us"] - sum(entry["phases_us"].values())
        ) <= len(entry["phases_us"])


class TestMetricsOp:
    def test_json_snapshot(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query1")
            snapshot = client.request_ok("metrics")
        assert snapshot["outcomes"]["ok"]["total"] >= 1
        assert snapshot["ops"]["query"]["cumulative"]["count"] == 1
        assert snapshot["uptime_seconds"] >= 0
        gauges = snapshot["gauges"]
        assert gauges["queue_limit"] == 16
        assert gauges["workers"] == 4
        assert "buffer_forward_capacity_bytes" in gauges
        # The metrics request itself is live in the connections view.
        (counts,) = snapshot["connections"].values()
        assert counts["requests"] >= 1

    def test_prometheus_text(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query1")
            text = client.request_ok("metrics", format="text")["text"]
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_request_seconds{op="query",quantile="0.99"}' in text
        assert 'repro_gauge{name="inflight"}' in text

    def test_unknown_format_is_bad_request(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("metrics", format="xml")
            assert reply["ok"] is False
            assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST

    def test_stats_reports_uptime_and_pool_budget(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            stats = client.stats()
        assert stats["daemon"]["uptime_seconds"] >= 0
        assert stats["daemon"]["queue_depth"] == 0
        for direction in ("forward", "backward"):
            pool = stats["buffer"][direction]
            assert pool["capacity_bytes"] > 0
            assert 0 <= pool["pinned_bytes"] <= pool["capacity_bytes"]
            assert "used_bytes" in pool


class TestDeterministicBackpressure:
    def test_saturated_pool_sheds_with_full_accounting(self, serve_context):
        """Satellite: blocked worker pool -> typed sheds, no metric leak."""
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=1, queue_limit=1
        )
        blocked = threading.Event()
        release = threading.Event()

        def plug() -> None:
            blocked.set()
            release.wait(30)

        with DaemonHandle(daemon) as handle:
            try:
                # Occupy the only worker thread, then fill the only
                # admission slot with a query stuck behind it.
                daemon._executor.submit(plug)
                assert blocked.wait(10)
                stuck = socket.create_connection(
                    ("127.0.0.1", handle.port), timeout=30
                )
                protocol.send_frame(
                    stuck, {"id": 0, "op": "query", "name": "query1",
                            "rid": "stuck-1"}
                )
                deadline = time.monotonic() + 10
                while daemon._inflight < 1:
                    assert time.monotonic() < deadline, "query never admitted"
                    time.sleep(0.01)

                with ServeClient("127.0.0.1", handle.port) as client:
                    reply = client.request("query", name="query1", rid="shed-1")
                    assert reply["ok"] is False
                    assert reply["error"]["type"] == protocol.ERROR_BACKPRESSURE
                    server = reply["server"]
                    assert server["rid"] == "shed-1"
                    assert server["outcome"] == "backpressure"
                    # A shed request never executes: no counters leak
                    # into the client's session or the shared totals.
                    assert server["counters"] == {}
                    stats = client.stats()
                    assert all(
                        value == 0
                        for direction in stats["client"].values()
                        for value in direction.values()
                    )
                    assert stats["daemon"]["backpressure_replies"] == 1

                release.set()
                reply = protocol.recv_frame(stuck)
                assert reply["ok"] is True
                assert reply["server"]["rid"] == "stuck-1"
                stuck.close()
            finally:
                release.set()
        telemetry = daemon.telemetry
        assert telemetry.outcomes["backpressure"].total == 1
        assert daemon.counters.requests_shed == 1
        # Shed + served + inline add up: nothing double- or un-counted.
        snapshot = telemetry.snapshot()
        op_total = sum(
            data["requests"]["total"]
            for name, data in snapshot["ops"].items()
            if not name.startswith("phase:")
        )
        assert op_total == telemetry.requests_total()


class TestConservationUnderLoad:
    def test_telemetry_accounts_for_every_frame(self, serve_context):
        """Acceptance: sum(per-op ok + shed + errors) == requests sent."""
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=2, queue_limit=2
        )
        with DaemonHandle(daemon) as handle:
            load = run_load(
                "127.0.0.1", handle.port, concurrency=4, requests_per_client=6
            )
        assert load.requests_ok == 24
        assert load.requests_failed == 0
        telemetry = daemon.telemetry
        snapshot = telemetry.snapshot()
        query_frames = (
            load.requests_ok + load.shed_retries + load.requests_failed
        )
        assert snapshot["ops"]["query"]["requests"]["total"] == query_frames
        assert telemetry.outcomes["backpressure"].total == load.shed_retries
        # One stats frame per client on top of the queries.
        assert telemetry.requests_total() == query_frames + 4
        # Windowed and cumulative views agree while everything is live.
        ok_windowed = snapshot["outcomes"]["ok"]["windowed"]
        assert ok_windowed == snapshot["outcomes"]["ok"]["total"]

    def test_loadgen_collects_server_side_latency(self, serve_context):
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=4, queue_limit=16
        )
        with DaemonHandle(daemon) as handle:
            load = run_load(
                "127.0.0.1", handle.port, concurrency=2, requests_per_client=4
            )
        assert load.server_latency_histogram().count == 8
        assert load.queue_wait_histogram().count == 8
        # Server-measured latency never exceeds the client measurement
        # (the difference is the network + event-loop turnaround).
        for client in load.clients:
            for client_s, server_s in zip(
                client.latencies_s, client.server_latencies_s
            ):
                assert 0 <= server_s <= client_s
        summary = load.summary()
        assert summary["requests_sent"] == 8
        assert summary["server_latency"]["latency_ms_p99"] >= 0
        assert summary["client_latency"]["latency_ms_p99"] > 0
