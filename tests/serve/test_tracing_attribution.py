"""End-to-end request tracing: propagation, attribution, flight recorder.

These tests gate the tracing layer's central claims over a real daemon:

* trace context propagates client -> daemon -> reply -> flight recorder;
* per-request attributed I/O is *conserved* — the deltas echoed in every
  reply sum, bit-for-bit, to the session totals the daemon reports;
* the flight recorder retains complete traces the ``debug`` op serves;
* with no tracer active, span entry points are shared no-ops (tracing
  disabled costs no storage-layer work);
* the lifecycle phase list is identical across the serve and obs layers
  (they must not import each other, so the constant is duplicated and
  pinned here).
"""

from __future__ import annotations

import pytest

from repro.obs import flightrecorder, tracing
from repro.serve import telemetry as serve_telemetry
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon
from repro.serve.loadgen import DEFAULT_MIX, ServeClient, run_load
from repro.serve.telemetry import DELTA_COUNTERS


def wait_for_trace(handle: DaemonHandle, trace_id: str) -> dict:
    """Poll the flight recorder for a trace id.

    Traces are filed *after* the reply is written, so a client can see
    its reply a moment before the recorder does.
    """
    import time

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        for trace in handle.daemon.flight.traces():
            if trace.get("trace") == trace_id:
                return trace
        time.sleep(0.01)
    raise AssertionError(f"trace {trace_id!r} never reached the recorder")


@pytest.fixture
def daemon(serve_context):
    """A running daemon with an eager flight recorder (every trace slow)."""
    handle = DaemonHandle(
        GraphQueryDaemon(
            serve_context,
            port=0,
            workers=4,
            queue_limit=16,
            flight=flightrecorder.FlightRecorder(slow_threshold_s=0.0),
        )
    )
    with handle:
        yield handle


class TestTracePropagation:
    def test_client_trace_id_echoed_and_retained(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request(
                "query", name="query1", trace={"id": "mytrace", "parent": 7}
            )
        assert reply["server"]["trace"] == "mytrace"
        retained = wait_for_trace(daemon, "mytrace")
        assert retained["parent"] == 7
        assert retained["op"] == "query"

    def test_request_without_context_gets_server_trace_id(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("query", name="query1")
        assert reply["server"]["trace"].startswith("srvtr-")

    def test_malformed_context_never_fails_the_request(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            for trace in ("plain-string", 7, ["x"], {"id": True}):
                reply = client.request("query", name="query1", trace=trace)
                assert reply["ok"] is True
                assert reply["server"]["trace"]  # server-assigned

    def test_unknown_context_fields_ignored(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request(
                "query",
                name="query1",
                trace={"id": "fwd", "baggage": {"k": "v"}, "version": 99},
            )
        assert reply["ok"] is True
        assert reply["server"]["trace"] == "fwd"

    def test_loadgen_verifies_echo_on_every_request(self, daemon):
        load = run_load("127.0.0.1", daemon.port, concurrency=3,
                        requests_per_client=4)
        assert load.requests_ok == 12
        assert load.traces_propagated() is True


class TestSpanTrees:
    def test_query_trace_carries_request_and_nav_spans(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query1", trace={"id": "spans1"})
        trace = wait_for_trace(daemon, "spans1")
        names = [span["name"] for span in trace["spans"]]
        assert "request.query" in names
        assert any(name.startswith("nav.") for name in names)
        root = next(s for s in trace["spans"] if s["name"] == "request.query")
        assert root["parent"] == tracing.ROOT_PARENT
        children = [
            s for s in trace["spans"] if s["parent"] == root["id"]
        ]
        assert children  # the nav spans hang off the request root

    def test_span_counters_sum_to_request_counters(self, daemon):
        # Spans attribute the same session deltas the record reports:
        # the root span's counters are the whole request's I/O.
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query3", trace={"id": "sums"})
            server = client.request(
                "query", name="query4", trace={"id": "sums2"}
            )["server"]
        trace = wait_for_trace(daemon, "sums2")
        root = next(
            s for s in trace["spans"] if s["name"] == "request.query"
        )
        for counter, value in server["counters"].items():
            if value:
                assert root["counters"].get(counter, 0) == value


class TestAttributionConservation:
    def test_per_request_deltas_sum_to_session_totals(self, daemon):
        load = run_load("127.0.0.1", daemon.port, concurrency=4,
                        requests_per_client=6)
        assert load.requests_ok == 24
        assert not load.requests_failed
        attributed = load.attributed_totals()
        session_sums: dict[str, int] = {}
        for client in load.clients:
            for direction in client.io_stats.values():
                for name in DELTA_COUNTERS:
                    session_sums[name] = (
                        session_sums.get(name, 0) + int(direction.get(name, 0))
                    )
        for name in DELTA_COUNTERS:
            assert attributed.get(name, 0) == session_sums[name]
        # The run must have attributed real work, or the identity above
        # is vacuous.
        assert attributed.get("buffer_hits", 0) > 0

    def test_attribution_split_by_query_name(self, daemon):
        load = run_load("127.0.0.1", daemon.port, concurrency=2,
                        requests_per_client=6)
        attribution = load.attribution()
        assert set(attribution) == set(DEFAULT_MIX)
        for counters in attribution.values():
            assert set(counters) == set(DELTA_COUNTERS)


class TestFlightRecorderIntegration:
    def test_debug_op_serves_retained_traces(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query1", trace={"id": "dbg1"})
            wait_for_trace(daemon, "dbg1")
            debug = client.debug()
        assert debug["flight"]["recorded"] >= 1
        assert "dbg1" in {t["trace"] for t in debug["traces"]}
        assert debug["config"]["workers"] == 4
        assert "uptime_seconds" in debug["stats"]

    def test_every_send_path_records_a_trace(self, daemon):
        # Error replies are traces too: the error ring retains them.
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("query", name="query99")
            assert reply["ok"] is False
        trace_id = reply["server"]["trace"]
        assert trace_id  # never an empty trace id
        wait_for_trace(daemon, trace_id)
        errors = daemon.daemon.flight.error_traces()
        assert errors[-1]["outcome"] == "bad_request"

    def test_dump_debug_bundle_round_trips(self, daemon, tmp_path):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query2", trace={"id": "bdl"})
        wait_for_trace(daemon, "bdl")
        path = daemon.daemon.dump_debug_bundle(tmp_path / "bundle")
        bundle = flightrecorder.read_debug_bundle(path)
        assert "bdl" in {t["trace"] for t in bundle["traces"]}
        assert bundle["config"]["queue_limit"] == 16


class TestDisabledTracingCost:
    def test_span_entry_points_are_noops_without_tracer(self):
        assert tracing.current_tracer() is None
        # The no-tracer path returns the shared singleton — no per-call
        # allocation, no tracer work.
        assert tracing.span("anything") is tracing.span("other")
        tracing.note("event")  # must not raise
        tracing.absorb_summary({"spans": []})  # must not raise

    def test_request_tracers_never_leak_across_requests(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query1", trace={"id": "one"})
            client.request_ok("query", name="query1", trace={"id": "two"})
        traces = {
            trace_id: wait_for_trace(daemon, trace_id)
            for trace_id in ("one", "two")
        }
        # Each request's span tree is its own: same shape, ids restart
        # from 0 — nothing accumulated from the previous request.
        assert len(traces["one"]["spans"]) == len(traces["two"]["spans"])
        assert traces["one"]["spans"][0]["id"] == 0
        assert traces["two"]["spans"][0]["id"] == 0
        # And nothing leaked into this (main) thread's context.
        assert tracing.current_tracer() is None


class TestLayerConstants:
    def test_lifecycle_phases_match_across_layers(self):
        # flightrecorder (obs) cannot import serve, so it duplicates the
        # phase list; this is the pin that keeps the copies identical.
        assert flightrecorder.LIFECYCLE_PHASES == serve_telemetry.PHASES
