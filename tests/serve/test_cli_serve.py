"""CLI tests for ``repro top`` and ``repro loadgen --json``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon


@pytest.fixture
def daemon(serve_context):
    handle = DaemonHandle(
        GraphQueryDaemon(serve_context, port=0, workers=4, queue_limit=16)
    )
    with handle:
        yield handle


class TestTopCommand:
    def test_top_once_renders_dashboard(self, daemon, capsys):
        code = main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "2", "--requests", "3"]
        )
        assert code == 0
        code = main(["top", "--port", str(daemon.port), "--once"])
        captured = capsys.readouterr()
        assert code == 0
        assert "repro top — uptime" in captured.out
        assert "qps" in captured.out
        assert "query" in captured.out  # per-op table row
        assert "queue" in captured.out

    def test_top_prometheus_prints_exposition(self, daemon, capsys):
        code = main(["top", "--port", str(daemon.port), "--prometheus"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# TYPE repro_requests_total counter" in captured.out
        assert "repro_uptime_seconds" in captured.out


class TestLoadgenJson:
    def test_loadgen_writes_summary_report(self, daemon, capsys, tmp_path):
        code = main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "2", "--requests", "3",
             "--json", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "server latency p50" in captured.out
        report = json.loads((tmp_path / "BENCH_loadgen.json").read_text())
        assert report["experiment"] == "loadgen"
        results = report["results"]
        assert results["requests_sent"] == 6
        assert results["requests_ok"] == 6
        assert results["consistent"] is True
        assert results["client_latency"]["latency_ms_p99"] > 0
        assert "queue_wait_ms_p99" in results["server_latency"]
        assert report["histograms"]["client_latency"]["count"] == 6
        assert report["histograms"]["queue_wait"]["count"] == 6

    def test_loadgen_report_validates(self, daemon, tmp_path, capsys):
        main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "1", "--requests", "2",
             "--json", str(tmp_path)]
        )
        capsys.readouterr()
        code = main(
            ["bench-validate", str(tmp_path / "BENCH_loadgen.json")]
        )
        assert code == 0


@pytest.fixture
def free_port():
    """A port with nothing listening on it (bound, then released)."""
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestTopConnectFailure:
    def test_top_exits_nonzero_with_clear_message(self, free_port, capsys):
        code = main(["top", "--port", str(free_port), "--once"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot connect to daemon" in captured.err
        assert str(free_port) in captured.err
        assert captured.out == ""  # no empty dashboard rendered


@pytest.fixture
def bundle(tmp_path):
    """A written debug bundle with two traces (one slow, with spans)."""
    from repro.obs.flightrecorder import write_debug_bundle

    traces = [
        {
            "trace": "fast", "rid": "r1", "client": "client-0",
            "op": "query", "outcome": "ok", "unix": 0.0, "server_us": 800,
            "phases_us": {"decode": 10, "execute": 790},
            "counters": {}, "parent": -1, "spans": [],
        },
        {
            "trace": "slow", "rid": "r2", "client": "client-1",
            "op": "query", "outcome": "ok", "unix": 0.0, "server_us": 9000,
            "phases_us": {"decode": 15, "execute": 8985},
            "counters": {"disk_seeks": 4},
            "parent": -1,
            "spans": [
                {"id": 0, "parent": -1, "name": "request.query",
                 "start_s": 0.0, "duration_s": 0.008, "status": "ok",
                 "counters": {"disk_seeks": 4}, "notes": {}},
                {"id": 1, "parent": 0, "name": "nav.query2",
                 "start_s": 0.001, "duration_s": 0.006, "status": "ok",
                 "counters": {"disk_seeks": 4}, "notes": {}},
            ],
        },
    ]
    return write_debug_bundle(
        tmp_path / "bundle", traces, config={"workers": 2}
    )


class TestTraceCommand:
    def test_list_renders_every_trace(self, bundle, capsys):
        code = main(["trace", "--bundle", str(bundle), "--list"])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace=fast" in captured.out
        assert "trace=slow" in captured.out

    def test_default_waterfall_is_the_slowest_trace(self, bundle, capsys):
        code = main(["trace", "--bundle", str(bundle)])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace=slow" in captured.out
        assert "trace=fast" not in captured.out
        assert "request.query" in captured.out
        assert "nav.query2" in captured.out
        assert "disk_seeks=4" in captured.out

    def test_select_by_id_and_rid(self, bundle, capsys):
        assert main(["trace", "--bundle", str(bundle), "fast"]) == 0
        assert "trace=fast" in capsys.readouterr().out
        assert main(["trace", "--bundle", str(bundle), "--rid", "r2"]) == 0
        assert "trace=slow" in capsys.readouterr().out

    def test_missing_id_is_an_error(self, bundle, capsys):
        code = main(["trace", "--bundle", str(bundle), "nope"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no retained trace with id(s): nope" in captured.err

    def test_folded_output(self, bundle, capsys):
        code = main(["trace", "--bundle", str(bundle), "--folded"])
        captured = capsys.readouterr()
        assert code == 0
        assert "query;execute;request.query;nav.query2 6000" in captured.out

    def test_connect_failure_suggests_bundle(self, free_port, capsys):
        code = main(["trace", "--port", str(free_port)])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot connect" in captured.err
        assert "--bundle" in captured.err

    def test_dump_writes_bundle_from_live_daemon(
        self, daemon, tmp_path, capsys
    ):
        code = main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "2", "--requests", "3"]
        )
        assert code == 0
        capsys.readouterr()
        out_dir = tmp_path / "dumped"
        code = main(
            ["trace", "--port", str(daemon.port), "--dump", str(out_dir)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "debug bundle" in captured.out
        code = main(["trace", "--bundle", str(out_dir), "--list"])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace=lgt" in captured.out  # propagated loadgen trace ids

    def test_dump_conflicts_with_bundle(self, bundle, tmp_path, capsys):
        code = main(
            ["trace", "--bundle", str(bundle), "--dump", str(tmp_path / "x")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "--dump reads a live daemon" in captured.err

    def test_not_a_bundle_directory_is_an_error(self, tmp_path, capsys):
        code = main(["trace", "--bundle", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "not a debug bundle" in captured.err
