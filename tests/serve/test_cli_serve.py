"""CLI tests for ``repro top`` and ``repro loadgen --json``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon


@pytest.fixture
def daemon(serve_context):
    handle = DaemonHandle(
        GraphQueryDaemon(serve_context, port=0, workers=4, queue_limit=16)
    )
    with handle:
        yield handle


class TestTopCommand:
    def test_top_once_renders_dashboard(self, daemon, capsys):
        code = main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "2", "--requests", "3"]
        )
        assert code == 0
        code = main(["top", "--port", str(daemon.port), "--once"])
        captured = capsys.readouterr()
        assert code == 0
        assert "repro top — uptime" in captured.out
        assert "qps" in captured.out
        assert "query" in captured.out  # per-op table row
        assert "queue" in captured.out

    def test_top_prometheus_prints_exposition(self, daemon, capsys):
        code = main(["top", "--port", str(daemon.port), "--prometheus"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# TYPE repro_requests_total counter" in captured.out
        assert "repro_uptime_seconds" in captured.out


class TestLoadgenJson:
    def test_loadgen_writes_summary_report(self, daemon, capsys, tmp_path):
        code = main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "2", "--requests", "3",
             "--json", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "server latency p50" in captured.out
        report = json.loads((tmp_path / "BENCH_loadgen.json").read_text())
        assert report["experiment"] == "loadgen"
        results = report["results"]
        assert results["requests_sent"] == 6
        assert results["requests_ok"] == 6
        assert results["consistent"] is True
        assert results["client_latency"]["latency_ms_p99"] > 0
        assert "queue_wait_ms_p99" in results["server_latency"]
        assert report["histograms"]["client_latency"]["count"] == 6
        assert report["histograms"]["queue_wait"]["count"] == 6

    def test_loadgen_report_validates(self, daemon, tmp_path, capsys):
        main(
            ["loadgen", "--port", str(daemon.port),
             "--concurrency", "1", "--requests", "2",
             "--json", str(tmp_path)]
        )
        capsys.readouterr()
        code = main(
            ["bench-validate", str(tmp_path / "BENCH_loadgen.json")]
        )
        assert code == 0
