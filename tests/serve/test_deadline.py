"""Request-deadline enforcement through the live daemon."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import protocol
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon
from repro.serve.loadgen import ServeClient
from repro.storage import faults


@pytest.fixture
def daemon(serve_context):
    handle = DaemonHandle(
        GraphQueryDaemon(serve_context, port=0, workers=2, queue_limit=8)
    )
    with handle:
        yield handle


class TestDeadlinePlumbing:
    def test_generous_deadline_serves_normally(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            result = client.request_ok(
                "neighbors", page=0, deadline_ms=30_000
            )
            assert "neighbors" in result

    def test_invalid_deadline_is_bad_request(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            for bad in (-1, "soon", False):
                reply = client.request("query", name="query1", deadline_ms=bad)
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
            assert client.ping() is True

    def test_already_expired_deadline_shed_before_admission(self, daemon):
        # A zero budget expires at arrival: the daemon sheds it without
        # ever taking a worker slot, with the typed timeout reply.
        before = daemon.daemon.counters.requests_timeout
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("query", name="query1", deadline_ms=0)
            assert reply["ok"] is False
            assert reply["error"]["type"] == protocol.ERROR_TIMEOUT
            assert reply["server"]["outcome"] == "timeout"
            assert client.ping() is True
        assert daemon.daemon.counters.requests_timeout == before + 1

    def test_inline_ops_ignore_missing_deadline(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            assert client.ping() is True
            assert "daemon" in client.stats()


class TestMidExecuteTimeout:
    def test_typed_timeout_reply_and_connection_survives(self, serve_context):
        # Stall every device read far past the deadline; the reply must
        # be a typed timeout at ~the deadline, not a stall-long hang,
        # and the connection keeps working once the abandoned execution
        # drains.
        serve_context.forward.drop_caches()
        serve_context.backward.drop_caches()
        plan = faults.FaultPlan(
            seed=5, slow_read_rate=1.0, slow_read_seconds=0.25
        )
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=2, queue_limit=8
        )
        with faults.activated(plan), DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.request("neighbors", page=0, deadline_ms=40)
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_TIMEOUT
                assert "deadline" in reply["error"]["message"]
                assert reply["server"]["outcome"] == "timeout"
                # Next request on the same connection works (the
                # abandoned future drained, the admission slot freed).
                assert client.ping() is True
                stats = client.stats()
        assert stats["daemon"]["requests_timeout"] >= 1
        assert plan.injected.get("slow_reads", 0) >= 1

    def test_queued_request_sheds_at_its_deadline(self, serve_context):
        # One worker, its slot occupied by a deliberately slow query: a
        # deadlined request behind it must time out while queued instead
        # of waiting its turn.
        serve_context.forward.drop_caches()
        serve_context.backward.drop_caches()
        plan = faults.FaultPlan(
            seed=6, slow_read_rate=1.0, slow_read_seconds=0.15
        )
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=1, queue_limit=8
        )
        slow_reply = {}
        with faults.activated(plan), DaemonHandle(daemon) as handle:

            def occupy():
                with ServeClient("127.0.0.1", handle.port) as slow_client:
                    slow_reply.update(
                        slow_client.request("query", name="query1")
                    )

            occupant = threading.Thread(target=occupy)
            occupant.start()
            try:
                time.sleep(0.05)  # let the slow query take the worker
                with ServeClient("127.0.0.1", handle.port) as client:
                    begin = time.monotonic()
                    reply = client.request(
                        "neighbors", page=1, deadline_ms=50
                    )
                    waited = time.monotonic() - begin
                    assert reply["ok"] is False
                    assert reply["error"]["type"] == protocol.ERROR_TIMEOUT
                    # The reply came out around the deadline, not after
                    # the occupant's multi-stall execution finished.
                    assert waited < 2.0
                    assert client.ping() is True
            finally:
                occupant.join(timeout=30)
        assert not occupant.is_alive()
        assert slow_reply.get("ok") is True

    def test_deadline_accounting_conserves(self, serve_context):
        serve_context.forward.drop_caches()
        serve_context.backward.drop_caches()
        plan = faults.FaultPlan(
            seed=7, slow_read_rate=1.0, slow_read_seconds=0.2
        )
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=2, queue_limit=8
        )
        with faults.activated(plan), DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.request("neighbors", page=0, deadline_ms=40)
                snapshot = client.metrics()
        outcomes = snapshot["outcomes"]
        assert outcomes.get("timeout", {}).get("total", 0) >= 1
        assert daemon.counters.requests_timeout >= 1
