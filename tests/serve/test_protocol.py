"""Tests for the serve wire protocol: framing, canonical JSON, digests."""

from __future__ import annotations

import struct

import pytest

from repro.errors import ServeError
from repro.serve import protocol


class TestCanonicalize:
    def test_sets_become_sorted_lists(self):
        assert protocol.canonicalize({3, 1, 2}) == [1, 2, 3]
        assert protocol.canonicalize(frozenset({"b", "a"})) == ["a", "b"]

    def test_tuples_become_lists(self):
        assert protocol.canonicalize((1, (2, 3))) == [1, [2, 3]]

    def test_int_dict_keys_become_sorted_strings(self):
        value = {10: "a", 2: "b"}
        assert protocol.canonicalize(value) == {"10": "a", "2": "b"}
        # Entries are emitted sorted by the string key.
        assert list(protocol.canonicalize(value)) == ["10", "2"]

    def test_key_collision_after_stringification_rejected(self):
        with pytest.raises(ServeError):
            protocol.canonicalize({1: "a", "1": "b"})

    def test_scalars_and_none_pass_through(self):
        for value in (True, False, None, 7, 1.5, "s"):
            assert protocol.canonicalize(value) == value

    def test_unknown_type_rejected(self):
        with pytest.raises(ServeError):
            protocol.canonicalize(object())

    def test_nested_query_payload_shape(self):
        payload = {"base_set": {7, 0}, "domains": [("mit.edu", 2)]}
        assert protocol.canonicalize(payload) == {
            "base_set": [0, 7],
            "domains": [["mit.edu", 2]],
        }


class TestDigests:
    def test_digest_independent_of_iteration_order(self):
        first = protocol.payload_digest({"a": {1, 2, 3}, "b": (1, 2)})
        second = protocol.payload_digest({"b": [1, 2], "a": {3, 2, 1}})
        assert first == second

    def test_digest_distinguishes_values(self):
        assert protocol.payload_digest({"a": 1}) != protocol.payload_digest(
            {"a": 2}
        )

    def test_canonical_json_is_compact_and_sorted(self):
        text = protocol.canonical_json({"b": 1, "a": (1, 2)})
        assert text == '{"a":[1,2],"b":1}'


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"id": 1, "op": "query", "name": "query1"}
        frame = protocol.encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == message

    def test_bad_json_payload_rejected(self):
        with pytest.raises(ServeError):
            protocol.decode_payload(b"{not json")
        with pytest.raises(ServeError):
            protocol.decode_payload(b"\xff\xfe")

    def test_oversized_frame_rejected_on_encode(self):
        huge = {"blob": "x" * (protocol.MAX_FRAME_BYTES + 16)}
        with pytest.raises(ServeError):
            protocol.encode_frame(huge)

    def test_socketpair_round_trip(self):
        import socket

        left, right = socket.socketpair()
        try:
            message = {"id": 9, "op": "ping"}
            protocol.send_frame(left, message)
            assert protocol.recv_frame(right) == message
            left.close()
            assert protocol.recv_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_async_round_trip(self):
        import asyncio

        async def scenario():
            import socket

            left, right = socket.socketpair()
            reader, writer = await asyncio.open_connection(sock=left)
            try:
                protocol.send_frame(right, {"op": "ping", "id": 0})
                assert await protocol.read_frame(reader) == {
                    "op": "ping",
                    "id": 0,
                }
                await protocol.write_frame(writer, protocol.ok_reply(0, {"pong": True}))
                assert protocol.recv_frame(right) == {
                    "id": 0,
                    "ok": True,
                    "result": {"pong": True},
                }
                right.close()
                assert await protocol.read_frame(reader) is None  # clean EOF
            finally:
                writer.close()

        asyncio.run(scenario())


class TestReplies:
    def test_ok_reply_shape(self):
        assert protocol.ok_reply(4, {"x": 1}) == {
            "id": 4,
            "ok": True,
            "result": {"x": 1},
        }

    def test_error_reply_shape(self):
        reply = protocol.error_reply(5, protocol.ERROR_BACKPRESSURE, "busy")
        assert reply == {
            "id": 5,
            "ok": False,
            "error": {"type": "backpressure", "message": "busy"},
        }


class TestFramingEdgeCases:
    def _reader_with(self, data: bytes):
        import asyncio

        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_oversized_announced_frame_rejected_async(self):
        import asyncio

        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)

        async def scenario():
            with pytest.raises(ServeError, match="limit"):
                await protocol.read_frame_raw(self._reader_with(header))

        asyncio.run(scenario())

    def test_oversized_announced_frame_rejected_blocking(self):
        import socket

        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            left.close()
            with pytest.raises(ServeError, match="limit"):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_truncated_payload_is_error_not_eof(self):
        import asyncio

        # Header promises 100 bytes; only 3 arrive before EOF.
        data = struct.pack(">I", 100) + b"abc"

        async def scenario():
            with pytest.raises(ServeError, match="mid-frame"):
                await protocol.read_frame_raw(self._reader_with(data))

        asyncio.run(scenario())

    def test_truncated_header_is_error_not_eof(self):
        import asyncio

        async def scenario():
            with pytest.raises(ServeError, match="mid-header"):
                await protocol.read_frame_raw(self._reader_with(b"\x00\x00"))

        asyncio.run(scenario())

    def test_clean_eof_is_none(self):
        import asyncio

        async def scenario():
            assert await protocol.read_frame_raw(self._reader_with(b"")) is None

        asyncio.run(scenario())

    def test_non_dict_json_payload_decodes(self):
        # Valid JSON that is not an object decodes fine at this layer;
        # rejecting it is the daemon's job (bad_request, not disconnect).
        assert protocol.decode_payload(b"[1,2,3]") == [1, 2, 3]
        assert protocol.decode_payload(b'"hello"') == "hello"


class TestTraceContext:
    def test_absent_or_malformed_yields_empty_context(self):
        for request in (
            {},
            {"trace": None},
            {"trace": "t-1"},
            {"trace": ["t-1"]},
            {"trace": 7},
            "not a dict",
        ):
            context = protocol.parse_trace_context(request)
            assert context.trace_id is None
            assert context.parent == protocol.NO_PARENT_SPAN

    def test_id_and_parent_extracted(self):
        context = protocol.parse_trace_context(
            {"trace": {"id": "cli-4", "parent": 2}}
        )
        assert context == protocol.TraceContext("cli-4", 2)

    def test_int_id_stringified_bool_rejected(self):
        assert protocol.parse_trace_context(
            {"trace": {"id": 7}}
        ).trace_id == "7"
        assert protocol.parse_trace_context(
            {"trace": {"id": True}}
        ).trace_id is None

    def test_bad_parent_falls_back_to_no_parent(self):
        for parent in ("3", 3.5, True, None, [3]):
            context = protocol.parse_trace_context(
                {"trace": {"id": "t", "parent": parent}}
            )
            assert context.parent == protocol.NO_PARENT_SPAN

    def test_unknown_fields_ignored_forward_compatible(self):
        context = protocol.parse_trace_context(
            {
                "trace": {
                    "id": "t-9",
                    "parent": 5,
                    "baggage": {"tenant": "a"},
                    "version": 99,
                    "sampled": False,
                }
            }
        )
        assert context == protocol.TraceContext("t-9", 5)
