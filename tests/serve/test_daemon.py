"""End-to-end tests for the graph query daemon and load generator."""

from __future__ import annotations

from concurrent.futures import Future

import pytest

from repro.errors import ServeError
from repro.query.workload import run_query
from repro.serve import protocol
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon
from repro.serve.loadgen import DEFAULT_MIX, ServeClient, run_load


@pytest.fixture
def daemon(serve_context):
    """A running daemon on a free port (per test: counters start clean)."""
    handle = DaemonHandle(
        GraphQueryDaemon(serve_context, port=0, workers=4, queue_limit=16)
    )
    with handle:
        yield handle


class TestRequestPath:
    def test_ping(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            assert client.ping() is True

    def test_query_matches_serial_engine(self, daemon, serve_context):
        serial = serve_context.serial_engine()
        with ServeClient("127.0.0.1", daemon.port) as client:
            for name in DEFAULT_MIX[:3]:
                served = client.request_ok("query", name=name)
                expected = run_query(serial, name)
                assert served["digest"] == protocol.payload_digest(
                    expected.payload
                )
                assert served["payload"] == protocol.canonicalize(
                    expected.payload
                )

    def test_neighbors_matches_store(self, daemon, serve_context):
        with ServeClient("127.0.0.1", daemon.port) as client:
            result = client.request_ok("neighbors", page=0)
            assert result["page"] == 0
            assert result["neighbors"] == serve_context.forward.out_neighbors(0)

    def test_stats_exposes_client_and_shared_views(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            client.request_ok("query", name="query1")
            stats = client.stats()
        assert stats["client"]["forward"]  # this client did forward I/O
        assert "bytes_read" in stats["shared"]["forward"]
        assert stats["daemon"]["queue_limit"] == 16
        assert stats["daemon"]["requests_ok"] >= 1

    def test_unknown_query_is_bad_request_not_disconnect(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("query", name="query99")
            assert reply["ok"] is False
            assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
            assert client.ping() is True  # connection survives

    def test_unknown_op_is_bad_request(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            reply = client.request("frobnicate")
            assert reply["ok"] is False
            assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST

    def test_out_of_range_page_is_bad_request(self, daemon):
        with ServeClient("127.0.0.1", daemon.port) as client:
            for page in (-1, 10**9, "zero", None):
                reply = client.request("neighbors", page=page)
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST

    def test_malformed_frame_gets_error_reply(self, daemon):
        import socket
        import struct

        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=10
        ) as sock:
            payload = b"{broken"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST


class TestAdmissionControl:
    def test_backpressure_reply_when_queue_full(self, serve_context):
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=1, queue_limit=1
        )
        with DaemonHandle(daemon) as handle:
            # Saturate the single admission slot from the inside: the
            # counter is event-loop-owned, so setting it via the loop
            # deterministically simulates a full queue.
            loop = handle._loop

            def set_inflight(value: int) -> None:
                future = Future()

                def apply() -> None:
                    daemon._inflight = value
                    future.set_result(None)

                loop.call_soon_threadsafe(apply)
                future.result(timeout=10)

            set_inflight(daemon.queue_limit)
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.request("query", name="query1")
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_BACKPRESSURE
                # ping and stats are served inline even under overload.
                assert client.ping() is True
                assert client.stats()["daemon"]["backpressure_replies"] >= 1

            set_inflight(0)
            with ServeClient("127.0.0.1", handle.port) as client:
                assert client.request_ok("query", name="query1")

    def test_invalid_configuration_rejected(self, serve_context):
        with pytest.raises(ServeError):
            GraphQueryDaemon(serve_context, workers=0)
        with pytest.raises(ServeError):
            GraphQueryDaemon(serve_context, queue_limit=0)


class TestLoadGenerator:
    def test_load_is_consistent_and_complete(self, daemon, serve_context):
        load = run_load(
            "127.0.0.1", daemon.port, concurrency=4, requests_per_client=6
        )
        assert load.requests_ok == 4 * 6
        assert load.requests_failed == 0
        assert [client.error for client in load.clients] == [None] * 4
        assert load.consistent()
        # Served digests equal the serial engine's, query by query.
        serial = serve_context.serial_engine()
        for name, digests in load.digests().items():
            expected = protocol.payload_digest(run_query(serial, name).payload)
            assert digests == {expected}
        assert load.latency_histogram().count == 24
        assert load.throughput_qps > 0

    def test_per_client_attribution_sums_to_shared_totals(
        self, daemon, serve_context
    ):
        before = serve_context.shared_totals()["forward"].get("bytes_read", 0)
        load = run_load(
            "127.0.0.1", daemon.port, concurrency=3, requests_per_client=4
        )
        client_sum = sum(
            client.io_stats["forward"].get("bytes_read", 0)
            for client in load.clients
        )
        after = serve_context.shared_totals()["forward"].get("bytes_read", 0)
        # Sessions merge into the shared registry as connections close, so
        # the shared growth is at least what the clients saw attributed
        # (their final stats snapshot races only with their *own* close).
        assert after - before >= client_sum >= 0

    def test_load_survives_tight_admission(self, serve_context):
        daemon = GraphQueryDaemon(
            serve_context, port=0, workers=2, queue_limit=1
        )
        with DaemonHandle(daemon) as handle:
            load = run_load(
                "127.0.0.1", handle.port, concurrency=4, requests_per_client=3
            )
            # Every request is eventually admitted; overload degrades
            # throughput, never correctness.
            assert load.requests_ok == 12
            assert load.requests_failed == 0
            assert load.consistent()
