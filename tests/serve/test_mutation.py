"""Daemon write path: add/remove ops, stats, online compaction."""

from __future__ import annotations

import pytest

from repro.serve import protocol
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon, ServeContext
from repro.serve.loadgen import ServeClient
from repro.storage.wal import GraphWal


@pytest.fixture
def mutable_env(tiny_repo, test_refinement_config, tmp_path):
    """A private mutable serving context (writes grow a WAL beside it)."""
    context = ServeContext.build(
        tiny_repo,
        tmp_path / "primary",
        buffer_bytes=128 * 1024,
        stripes=4,
        refinement=test_refinement_config,
    )
    context.enable_mutation()
    yield context, tmp_path
    context.close()


def _fresh_edge(context):
    """An edge absent from the graph (and its reverse, for clarity)."""
    num_pages = context.repository.num_pages
    for source in range(num_pages):
        row = set(context.forward.out_neighbors(source))
        for target in range(num_pages - 1, -1, -1):
            if target != source and target not in row:
                return source, target
    raise AssertionError("graph is complete?!")


class TestWriteOps:
    def test_add_remove_visible_in_both_directions(self, mutable_env):
        context, _tmp = mutable_env
        source, target = _fresh_edge(context)
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                before = client.request_ok("neighbors", page=source)["neighbors"]
                assert target not in before
                result = client.add_edges([[source, target]])
                assert result["op"] == "add"
                assert result["edges_applied"] == 1
                assert result["wal_bytes"] > 0
                after = client.request_ok("neighbors", page=source)["neighbors"]
                assert after == sorted(set(before) | {target})
                # The transpose overlay saw the same write flipped.
                assert source in context.backward.out_neighbors(target)

                removed = client.remove_edges([[source, target]])
                assert removed["op"] == "remove"
                assert (
                    client.request_ok("neighbors", page=source)["neighbors"]
                    == before
                )
                assert source not in context.backward.out_neighbors(target)
                stats = client.stats()
        assert stats["daemon"]["writes_applied"] == 2
        assert stats["daemon"]["requests_failed"] == 0

    def test_writes_are_durably_logged_before_ack(self, mutable_env):
        context, _tmp = mutable_env
        source, target = _fresh_edge(context)
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.add_edges([[source, target]])
        # The acknowledged write is on disk, replayable without the
        # daemon: a cold scan of the sidecar log sees the exact batch.
        wal = GraphWal.for_build(context.forward.build.root)
        scan = wal.scan()
        assert not scan.torn
        assert [(r.op, r.edges) for r in scan.records] == [
            ("add", ((source, target),))
        ]

    def test_write_rejected_without_mutation(
        self, tiny_repo, test_refinement_config, tmp_path
    ):
        context = ServeContext.build(
            tiny_repo,
            tmp_path / "immutable",
            buffer_bytes=128 * 1024,
            stripes=4,
            refinement=test_refinement_config,
        )
        try:
            daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
            with DaemonHandle(daemon) as handle:
                with ServeClient("127.0.0.1", handle.port) as client:
                    reply = client.request("add_edges", edges=[[0, 1]])
                    assert reply["ok"] is False
                    assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                    assert "not enabled" in reply["error"]["message"]
                    assert client.stats()["mutation"] == {"enabled": False}
        finally:
            context.close()

    def test_malformed_writes_are_bad_requests(self, mutable_env):
        context, _tmp = mutable_env
        num_pages = context.repository.num_pages
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                for bad in (
                    None,
                    [],
                    [[0]],
                    [[0, 1, 2]],
                    [[0, "1"]],
                    [[0, True]],
                    [[0, num_pages]],
                    [[-1, 0]],
                ):
                    reply = client.request("add_edges", edges=bad)
                    assert reply["ok"] is False, bad
                    assert (
                        reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                    ), bad
                # Nothing reached the log or the overlay; reads intact.
                assert client.stats()["mutation"]["wal_bytes"] == 0
                assert client.request_ok("neighbors", page=0)


class TestMutationStats:
    def test_stats_and_gauges_track_the_overlay(self, mutable_env):
        context, _tmp = mutable_env
        source, target = _fresh_edge(context)
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.add_edges([[source, target]])
                mutation = client.stats()["mutation"]
                assert mutation["enabled"] is True
                assert mutation["wal_bytes"] > 0
                assert mutation["wal_records"] == 1
                assert mutation["delta_edges"] == 1
                assert mutation["overlay_rows"] == 1
                assert mutation["compactions"] == 0
                gauges = client.metrics()["gauges"]
                assert gauges["wal_bytes"] == mutation["wal_bytes"]
                assert gauges["delta_edges"] == 1
                text = client.metrics(fmt="text")["text"]
                assert "wal_bytes" in text
                assert "delta_edges" in text


class TestCompactOp:
    def test_compact_folds_wal_and_truncates(self, mutable_env):
        context, tmp_path = mutable_env
        source, target = _fresh_edge(context)
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.add_edges([[source, target]])
                wal_before = client.stats()["mutation"]["wal_bytes"]
                result = client.compact(str(tmp_path / "compacted"))
                assert result["compacted"] is True
                assert result["generation"] == 1
                assert result["absorbed_records"] == 1
                assert result["mutation"]["absorbed_bytes"] == wal_before
                assert result["mutation"]["carried_bytes"] == 0

                mutation = client.stats()["mutation"]
                assert mutation["wal_bytes"] == 0
                assert mutation["delta_edges"] == 0
                assert mutation["compactions"] == 1
                assert mutation["last_compaction_generation"] == 1

                # The absorbed write is now baked into the adopted pair.
                row = client.request_ok("neighbors", page=source)["neighbors"]
                assert target in row
                assert source in context.backward.out_neighbors(target)

                # Writes keep flowing after the flip, logged beside the
                # *new* forward build.
                client.remove_edges([[source, target]])
                assert target not in (
                    client.request_ok("neighbors", page=source)["neighbors"]
                )
                new_wal = GraphWal.for_build(context.forward.build.root)
                assert len(new_wal.scan().records) == 1
        assert context.generation == 1

    def test_compact_rejected_without_mutation(
        self, tiny_repo, test_refinement_config, tmp_path
    ):
        context = ServeContext.build(
            tiny_repo,
            tmp_path / "immutable",
            buffer_bytes=128 * 1024,
            stripes=4,
            refinement=test_refinement_config,
        )
        try:
            daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
            with DaemonHandle(daemon) as handle:
                with ServeClient("127.0.0.1", handle.port) as client:
                    reply = client.request(
                        "compact", workdir=str(tmp_path / "never")
                    )
                    assert reply["ok"] is False
                    assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                    assert "requires mutation" in reply["error"]["message"]
                    assert context.generation == 0
        finally:
            context.close()
