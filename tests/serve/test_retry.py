"""Unit tests for the shared client retry/backoff policy."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.retry import (
    DEFAULT_MAX_ATTEMPTS,
    IDEMPOTENT_OPS,
    RetryBudget,
    RetryPolicy,
    RetrySchedule,
)


class TestJitter:
    def test_delays_bounded_by_base_and_cap(self):
        policy = RetryPolicy(base_s=0.01, cap_s=0.05, seed=1)
        schedule = policy.for_request()
        for _ in range(200):
            delay = schedule.next_delay()
            assert delay is not None
            assert 0.01 <= delay <= 0.05

    def test_same_seed_same_delay_sequence(self):
        one = RetryPolicy(seed=42).for_request()
        two = RetryPolicy(seed=42).for_request()
        assert [one.next_delay() for _ in range(50)] == [
            two.next_delay() for _ in range(50)
        ]

    def test_different_seeds_decorrelate(self):
        one = RetryPolicy(seed=1).for_request()
        two = RetryPolicy(seed=2).for_request()
        assert [one.next_delay() for _ in range(20)] != [
            two.next_delay() for _ in range(20)
        ]

    def test_schedules_share_the_policy_rng(self):
        # Two logical requests of one client draw from one jitter
        # stream — their delays continue it instead of repeating it.
        policy = RetryPolicy(seed=7)
        first = [policy.for_request().next_delay() for _ in range(3)]
        replayed = RetryPolicy(seed=7)
        schedule = replayed.for_request()
        assert [schedule.next_delay() for _ in range(3)] != first


class TestLimits:
    def test_attempt_cap_exhausts_to_none(self):
        policy = RetryPolicy(max_attempts=3, seed=0)
        schedule = policy.for_request()
        delays = [schedule.next_delay() for _ in range(5)]
        assert all(d is not None for d in delays[:3])
        assert delays[3] is None and delays[4] is None
        assert schedule.attempts == 3

    def test_fresh_schedule_resets_the_attempt_count(self):
        policy = RetryPolicy(max_attempts=1, seed=0)
        assert policy.for_request().next_delay() is not None
        again = policy.for_request()
        assert again.next_delay() is not None
        assert again.next_delay() is None

    def test_zero_attempts_never_retries(self):
        assert RetryPolicy(max_attempts=0).for_request().next_delay() is None

    def test_shared_budget_bounds_total_retries(self):
        budget = RetryBudget(5)
        policies = [
            RetryPolicy(seed=i, budget=budget) for i in range(3)
        ]
        granted = sum(
            1
            for policy in policies
            for _ in range(4)
            if policy.for_request().next_delay() is not None
        )
        assert granted == 5
        assert budget.remaining == 0
        assert policies[0].for_request().next_delay() is None

    def test_budget_validation(self):
        with pytest.raises(ServeError):
            RetryBudget(-1)
        assert RetryBudget(0).take() is False

    def test_policy_validation(self):
        with pytest.raises(ServeError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ServeError):
            RetryPolicy(base_s=0.5, cap_s=0.1)
        with pytest.raises(ServeError):
            RetryPolicy(max_attempts=-1)

    def test_defaults_are_generous(self):
        policy = RetryPolicy()
        assert policy.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert policy.budget is None
        assert isinstance(policy.for_request(), RetrySchedule)


class TestIdempotencyGate:
    def test_backpressure_always_retryable(self):
        policy = RetryPolicy()
        for op in ("query", "swap", "anything"):
            assert policy.retryable(op, "backpressure") is True

    def test_reads_retryable_after_ambiguous_failure(self):
        policy = RetryPolicy()
        for op in IDEMPOTENT_OPS:
            assert policy.retryable(op) is True
            assert policy.retryable(op, None) is True

    def test_swap_never_retried_blind(self):
        # Re-sending the one mutating op could re-run a store swap.
        policy = RetryPolicy()
        assert "swap" not in IDEMPOTENT_OPS
        assert policy.retryable("swap") is False
        assert policy.retryable("swap", "server_error") is False
