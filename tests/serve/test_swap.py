"""Hot store swap: validation, atomic adoption, serving continuity."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.serve import protocol
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon, ServeContext
from repro.serve.loadgen import DEFAULT_MIX, ServeClient
from repro.storage import faults


@pytest.fixture
def swap_env(tiny_repo, test_refinement_config, tmp_path):
    """A private serving context plus a byte-identical replacement pair.

    Private because a swap retires the original stores — the shared
    session-scoped context must not be mutated under other tests.
    """
    context = ServeContext.build(
        tiny_repo,
        tmp_path / "primary",
        buffer_bytes=128 * 1024,
        stripes=4,
        refinement=test_refinement_config,
    )
    replacement = ServeContext.build(
        tiny_repo,
        tmp_path / "replacement",
        buffer_bytes=128 * 1024,
        stripes=4,
        refinement=test_refinement_config,
    )
    replacement.close()  # only its committed directories are needed
    yield context, tmp_path / "replacement", tmp_path
    context.close()


class TestSwapOp:
    def test_swap_preserves_results_and_connection(self, swap_env):
        context, replacement, _tmp = swap_env
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                before = {
                    name: client.request_ok("query", name=name)["digest"]
                    for name in DEFAULT_MIX[:3]
                }
                result = client.swap(str(replacement))
                assert result["swapped"] is True
                assert result["generation"] == 1
                # Same connection, sessions rebuilt lazily: answers are
                # digest-identical off the new pair.
                after = {
                    name: client.request_ok("query", name=name)["digest"]
                    for name in DEFAULT_MIX[:3]
                }
                assert after == before
                stats = client.stats()
        assert context.generation == 1
        assert stats["daemon"]["store_swaps"] == 1
        assert stats["daemon"]["requests_failed"] == 0

    def test_swap_rejects_corrupt_candidate(self, swap_env):
        context, replacement, tmp_path = swap_env
        corrupt = tmp_path / "corrupt"
        for name in ("serve_f", "serve_b"):
            shutil.copytree(replacement / name, corrupt / name)
            faults.corrupt_snode_regions(corrupt / name, limit=2, seed=3)
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.request("swap", workdir=str(corrupt))
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                assert "swap rejected" in reply["error"]["message"]
                # The old pair keeps serving, untouched.
                assert context.generation == 0
                assert client.request_ok("query", name="query1")["digest"]

    def test_swap_rejects_partial_build(self, swap_env):
        context, replacement, tmp_path = swap_env
        partial = tmp_path / "partial"
        for name in ("serve_f", "serve_b"):
            shutil.copytree(replacement / name, partial / name)
        manifest = partial / "serve_f" / "manifest.json"
        data = json.loads(manifest.read_text())
        data["digest"] = "0" * 16
        manifest.write_text(json.dumps(data))
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.request("swap", workdir=str(partial))
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                assert context.generation == 0
                assert client.ping() is True

    def test_swap_rejects_missing_directory(self, swap_env):
        context, _replacement, tmp_path = swap_env
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.request(
                    "swap", workdir=str(tmp_path / "nowhere")
                )
                assert reply["ok"] is False
                assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                assert client.ping() is True

    def test_swap_needs_a_workdir(self, swap_env):
        context, _replacement, _tmp = swap_env
        daemon = GraphQueryDaemon(context, port=0, workers=2, queue_limit=8)
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                for bad in (None, "", 7):
                    reply = client.request("swap", workdir=bad)
                    assert reply["ok"] is False
                    assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
