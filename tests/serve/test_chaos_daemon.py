"""Graceful degradation served through the daemon path.

A corrupt region under ``on_corruption="degrade"`` must surface to a
network client as a typed **degraded** success — quarantined region,
empty rows, honest outcome — never as an error reply or a dropped
connection.
"""

from __future__ import annotations

import shutil

import pytest

from repro.serve import protocol
from repro.serve.daemon import DaemonHandle, GraphQueryDaemon, ServeContext
from repro.serve.loadgen import ServeClient


@pytest.fixture
def corrupted_pair(tiny_repo, test_refinement_config, tmp_path):
    """Committed serve_f/serve_b directories with every region flipped."""
    from repro.storage.faults import corrupt_snode_regions

    pristine = ServeContext.build(
        tiny_repo,
        tmp_path / "pristine",
        buffer_bytes=128 * 1024,
        stripes=4,
        refinement=test_refinement_config,
    )
    pristine.close()
    chaos = tmp_path / "chaos"
    for name in ("serve_f", "serve_b"):
        shutil.copytree(tmp_path / "pristine" / name, chaos / name)
        corrupt_snode_regions(chaos / name, seed=29)
    return chaos


class TestDegradeThroughDaemon:
    def test_corrupt_region_serves_degraded_reply(
        self, tiny_repo, corrupted_pair
    ):
        context = ServeContext.open(
            tiny_repo,
            corrupted_pair,
            buffer_bytes=128 * 1024,
            stripes=4,
            on_corruption="degrade",
        )
        try:
            daemon = GraphQueryDaemon(
                context, port=0, workers=2, queue_limit=8
            )
            with DaemonHandle(daemon) as handle:
                with ServeClient("127.0.0.1", handle.port) as client:
                    reply = client.request("query", name="query1")
                    # Served, not failed — and honestly marked.
                    assert reply["ok"] is True
                    assert reply["server"]["outcome"] == "degraded"
                    assert reply["server"]["counters"]["degraded_reads"] > 0
                    # The connection survives and the same query answers
                    # again, now off the quarantine list.
                    again = client.request("query", name="query1")
                    assert again["ok"] is True
                    assert again["server"]["outcome"] == "degraded"
                    stats = client.stats()
            shared = stats["shared"]
            quarantined = sum(
                direction.get("regions_quarantined", 0)
                for direction in shared.values()
            )
            degraded = sum(
                direction.get("degraded_reads", 0)
                for direction in shared.values()
            )
            assert quarantined > 0
            assert degraded > 0
            assert stats["daemon"]["requests_failed"] == 0
            # Degraded requests count as served in the daemon totals;
            # telemetry tracks the degraded outcome separately.
            assert stats["daemon"]["requests_ok"] >= 2
            snapshot = daemon.telemetry.snapshot()
            assert snapshot["outcomes"]["degraded"]["total"] >= 2
        finally:
            context.close()

    def test_neighbors_degrades_too(self, tiny_repo, corrupted_pair):
        context = ServeContext.open(
            tiny_repo,
            corrupted_pair,
            buffer_bytes=128 * 1024,
            stripes=4,
            on_corruption="degrade",
        )
        try:
            daemon = GraphQueryDaemon(
                context, port=0, workers=2, queue_limit=8
            )
            with DaemonHandle(daemon) as handle:
                with ServeClient("127.0.0.1", handle.port) as client:
                    # Pages in supernodes without intranode edges have
                    # no region to corrupt; scan until one degrades.
                    degraded = None
                    for page in range(context.repository.num_pages):
                        reply = client.request("neighbors", page=page)
                        assert reply["ok"] is True
                        if reply["server"]["outcome"] == "degraded":
                            degraded = reply
                            break
                    assert degraded is not None
                    # Intranode rows are quarantined to empty; superedge
                    # regions are untouched, so the row may keep its
                    # cross-supernode edges — degraded, not invented.
                    assert isinstance(degraded["result"]["neighbors"], list)
                    assert client.ping() is True
        finally:
            context.close()

    def test_raise_mode_fails_the_request_not_the_connection(
        self, tiny_repo, corrupted_pair
    ):
        context = ServeContext.open(
            tiny_repo,
            corrupted_pair,
            buffer_bytes=128 * 1024,
            stripes=4,
            on_corruption="raise",
        )
        try:
            daemon = GraphQueryDaemon(
                context, port=0, workers=2, queue_limit=8
            )
            with DaemonHandle(daemon) as handle:
                with ServeClient("127.0.0.1", handle.port) as client:
                    reply = client.request("query", name="query1")
                    assert reply["ok"] is False
                    assert reply["error"]["type"] == protocol.ERROR_BAD_REQUEST
                    assert "checksum mismatch" in reply["error"]["message"]
                    assert client.ping() is True
        finally:
            context.close()

    def test_engine_construction_preserves_store_policy(
        self, tiny_repo, corrupted_pair
    ):
        # Regression: QueryEngine pushes its own on_corruption default
        # onto the stores it reads; make_engine must thread the serving
        # policy through or every new client silently flips the shared
        # stores back to raise mode.
        context = ServeContext.open(
            tiny_repo,
            corrupted_pair,
            buffer_bytes=128 * 1024,
            stripes=4,
            on_corruption="degrade",
        )
        try:
            engine = context.make_engine("client-1")
            try:
                assert context.forward.store.on_corruption == "degrade"
                assert context.backward.store.on_corruption == "degrade"
            finally:
                engine.close()
        finally:
            context.close()
