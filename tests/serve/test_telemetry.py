"""Unit tests for the serving telemetry aggregation layer."""

from __future__ import annotations

import pytest

from repro.obs.accesslog import AccessLog, SlowQueryLog
from repro.obs.histogram import LatencyHistogram
from repro.serve.telemetry import (
    OUTCOMES,
    PHASES,
    RequestRecord,
    ServeTelemetry,
    render_prometheus,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _record(
    rid: str = "r0",
    op: str = "query",
    outcome: str = "ok",
    phases: dict | None = None,
    **kwargs,
) -> RequestRecord:
    return RequestRecord(
        rid=rid,
        client="client-1",
        op=op,
        outcome=outcome,
        unix=1000.0,
        phases=phases if phases is not None else {"execute": 0.010},
        **kwargs,
    )


def _telemetry(clock: FakeClock, **kwargs) -> ServeTelemetry:
    return ServeTelemetry(
        window_seconds=10.0,
        windows=2,
        clock=clock,
        wall_clock=lambda: 1000.0,
        **kwargs,
    )


class TestRequestRecord:
    def test_server_latency_is_the_sum_of_phases(self):
        record = _record(
            phases={"decode": 0.001, "queue_wait": 0.002, "execute": 0.004}
        )
        assert record.server_s == pytest.approx(0.007)

    def test_reply_view_rounds_phases_to_microseconds(self):
        record = _record(phases={"decode": 0.0000015, "execute": 0.01})
        view = record.reply_view()
        assert view["rid"] == "r0"
        assert view["outcome"] == "ok"
        assert view["phases_us"] == {"decode": 2, "execute": 10000}

    def test_log_view_carries_error_only_when_set(self):
        assert "error" not in _record().log_view()
        failed = _record(outcome="server_error", error="boom").log_view()
        assert failed["error"] == "boom"
        assert failed["server_us"] == 10000
        assert failed["client"] == "client-1"


class TestServeTelemetry:
    def test_unknown_outcome_rejected(self):
        telemetry = _telemetry(FakeClock())
        with pytest.raises(ValueError):
            telemetry.record(_record(outcome="weird"))

    def test_outcome_and_op_accounting(self):
        telemetry = _telemetry(FakeClock())
        telemetry.record(_record(rid="r0", outcome="ok"))
        telemetry.record(_record(rid="r1", outcome="backpressure", phases={}))
        telemetry.record(_record(rid="r2", op="stats", outcome="ok"))
        assert telemetry.requests_total() == 3
        assert telemetry.outcomes["ok"].total == 2
        assert telemetry.outcomes["backpressure"].total == 1
        snapshot = telemetry.snapshot()
        assert snapshot["ops"]["query"]["requests"]["total"] == 2
        assert snapshot["ops"]["stats"]["requests"]["total"] == 1

    def test_phase_histograms_recorded_per_phase(self):
        telemetry = _telemetry(FakeClock())
        telemetry.record(
            _record(phases={"decode": 0.001, "execute": 0.010})
        )
        assert "phase:decode" in telemetry.latency
        assert "phase:execute" in telemetry.latency
        assert telemetry.latency.get("phase:decode").cumulative.count == 1

    def test_connection_lifecycle(self):
        telemetry = _telemetry(FakeClock())
        telemetry.connection_opened("client-1")
        telemetry.record(_record())
        connections = telemetry.snapshot()["connections"]
        assert connections["client-1"]["requests"] == 1
        assert connections["client-1"]["ok"] == 1
        telemetry.connection_closed("client-1")
        assert telemetry.snapshot()["connections"] == {}
        # Requests stay aggregated after the connection is gone.
        assert telemetry.requests_total() == 1

    def test_windowed_decays_cumulative_does_not(self):
        clock = FakeClock()
        telemetry = _telemetry(clock)
        telemetry.record(_record())
        clock.advance(25.0)  # beyond the 2 x 10s horizon
        data = telemetry.snapshot()["ops"]["query"]
        assert data["windowed"]["count"] == 0
        assert data["cumulative"]["count"] == 1

    def test_windowed_merge_equals_cumulative_across_rotation(self):
        """Acceptance property: every window merged == cumulative."""
        clock = FakeClock()
        closed: list[LatencyHistogram] = []
        telemetry = _telemetry(clock)
        histogram = telemetry.latency.get("query")
        histogram.on_rotate = lambda _index, hist: closed.append(hist)
        for step in range(10):
            # Powers of two sum exactly whatever the addition order, so
            # the histogram equality below is genuinely bit-for-bit.
            telemetry.record(_record(phases={"execute": 2.0 ** -(step + 1)}))
            clock.advance(7.0)
        live = histogram.snapshot()  # closes stale buckets into ``closed``
        merged = LatencyHistogram(histogram.min_value, histogram.growth)
        for bucket in closed:
            merged.merge(bucket)
        merged.merge(live)
        assert merged.to_dict() == histogram.cumulative.to_dict()

    def test_logs_receive_every_record(self):
        telemetry = _telemetry(
            FakeClock(),
            access_log=AccessLog(),
            slow_log=SlowQueryLog(threshold_s=0.005),
        )
        telemetry.record(_record(rid="fast", phases={"execute": 0.001}))
        telemetry.record(_record(rid="slow", phases={"execute": 0.010}))
        assert [e["rid"] for e in telemetry.access_log.entries()] == [
            "fast",
            "slow",
        ]
        assert [e["rid"] for e in telemetry.slow_log.top()] == ["slow"]

    def test_uptime_and_snapshot_shape(self):
        clock = FakeClock(now=5.0)
        telemetry = _telemetry(clock)
        clock.advance(3.0)
        snapshot = telemetry.snapshot(gauges={"inflight": 2})
        assert snapshot["uptime_seconds"] == pytest.approx(3.0)
        assert snapshot["started_unix"] == 1000.0
        assert snapshot["window_seconds"] == 10.0
        assert snapshot["windows"] == 2
        assert set(snapshot["outcomes"]) == set(OUTCOMES)
        assert snapshot["gauges"] == {"inflight": 2}
        assert "access_log" in snapshot
        assert "slow_queries" in snapshot


class TestRenderPrometheus:
    def test_exposition_contains_expected_samples(self):
        clock = FakeClock()
        telemetry = _telemetry(clock)
        telemetry.record(_record())
        telemetry.record(_record(rid="r1", outcome="backpressure", phases={}))
        text = render_prometheus(telemetry.snapshot(gauges={"inflight": 1}))
        assert text.endswith("\n")
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{outcome="ok"} 1.0' in text
        assert 'repro_requests_total{outcome="backpressure"} 1.0' in text
        assert '# TYPE repro_request_seconds summary' in text
        assert 'repro_request_seconds{op="query",quantile="0.5"}' in text
        # Both records carry op "query" (the shed one with zero phases).
        assert 'repro_request_seconds_count{op="query"} 2.0' in text
        assert 'repro_gauge{name="inflight"} 1.0' in text
        assert "repro_uptime_seconds" in text
        assert "repro_slow_queries_total" in text

    def test_non_numeric_gauges_are_skipped(self):
        telemetry = _telemetry(FakeClock())
        text = render_prometheus(
            telemetry.snapshot(gauges={"label": "text", "ok": True, "n": 3})
        )
        assert 'repro_gauge{name="n"} 3.0' in text
        assert "label" not in text
        assert 'name="ok"' not in text

    def test_phases_constant_matches_lifecycle_order(self):
        assert PHASES == ("decode", "queue_wait", "execute", "encode", "reply")
