"""Serve-test fixtures: one built ServeContext shared by the module."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def serve_context(tiny_repo, test_refinement_config, tmp_path_factory):
    """Forward + transpose stores and indexes over ``tiny_repo``."""
    from repro.serve.daemon import ServeContext

    context = ServeContext.build(
        tiny_repo,
        tmp_path_factory.mktemp("serve"),
        buffer_bytes=128 * 1024,
        stripes=4,
        refinement=test_refinement_config,
    )
    yield context
    context.close()
