"""Core losslessness property: for arbitrary graphs and arbitrary
partitions, the S-Node model + physical encoding preserve every edge.

This is stronger than the pipeline test: the partition here is *random*,
not the refinement's output, so the property covers degenerate shapes
(singleton supernodes, one giant supernode, empty supernodes' worth of
pages with no links, dense negative superedges...).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.partition.partition import Partition
from repro.snode.encode import (
    decode_intranode,
    encode_intranode,
    encode_superedge,
    positive_rows_from_payload,
)
from repro.snode.model import build_model
from repro.snode.numbering import build_numbering
from repro.webdata.corpus import Repository


@st.composite
def graph_partition_case(draw):
    n = draw(st.integers(min_value=1, max_value=28))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=120,
        )
    )
    edges = [(s, t) for s, t in edges if s != t]
    labels = draw(st.lists(st.integers(0, 4), min_size=n, max_size=n))
    return n, edges, labels


@settings(deadline=None, max_examples=60)
@given(graph_partition_case())
def test_property_model_and_codecs_are_lossless(case):
    n, edges, labels = case
    urls = [f"http://site{labels[i]}.com/p{i:04d}.html" for i in range(n)]
    repository = Repository.from_parts(urls, edges)
    partition = Partition.from_assignment(
        labels, domains=[f"site{label}.com" for label in labels]
    )
    numbering = build_numbering(repository, partition)
    model = build_model(repository.graph, numbering)

    reconstructed = set()
    boundaries = numbering.boundaries
    # Intranode graphs through the physical codec.
    for supernode, rows in enumerate(model.intranode):
        decoded = decode_intranode(encode_intranode(rows))
        assert decoded == rows
        base = boundaries[supernode]
        for local, row in enumerate(decoded):
            for target in row:
                reconstructed.add((base + local, base + target))
    # Superedge graphs through the physical codec.
    for (source, target), graph in model.superedges.items():
        payload = encode_superedge(graph)
        source_size = numbering.supernode_size(source)
        target_size = numbering.supernode_size(target)
        rows = positive_rows_from_payload(payload, source_size, target_size)
        source_base = boundaries[source]
        target_base = boundaries[target]
        for local, row in enumerate(rows):
            for t in row:
                reconstructed.add((source_base + local, target_base + t))

    expected = {
        (numbering.old_to_new[s], numbering.old_to_new[t])
        for s, t in repository.graph.edges()
    }
    assert reconstructed == expected


@settings(deadline=None, max_examples=30)
@given(graph_partition_case())
def test_property_transpose_model_is_lossless(case):
    n, edges, labels = case
    urls = [f"http://site{labels[i]}.com/p{i:04d}.html" for i in range(n)]
    repository = Repository.from_parts(urls, edges)
    partition = Partition.from_assignment(
        labels, domains=[f"site{label}.com" for label in labels]
    )
    numbering = build_numbering(repository, partition)
    transpose = repository.graph.transpose()
    model = build_model(transpose, numbering)
    total = sum(len(r) for rows in model.intranode for r in rows)
    for (source, target), graph in model.superedges.items():
        if graph.negative:
            target_size = numbering.supernode_size(target)
            total += len(graph.linked_sources) * target_size - graph.num_edges
        else:
            total += graph.num_edges
    assert total == transpose.num_edges
