"""Property test: N concurrent sessions over one shared store behave
exactly like a serial run.

The claims (the tentpole's correctness contract):

* every thread's Figure 11 query results are byte-identical (canonical
  digest) to a serial execution on the shared path;
* the pinned supernode graphs are never evicted, however hard the
  navigation buffer churns;
* the buffer pools respect their byte budgets and pass
  ``check_invariants`` while readers hammer them;
* per-client metrics plus the base registry sum to the shared totals
  (conservation), before and after sessions close.
"""

from __future__ import annotations

import threading

import pytest

from repro.query.workload import PAPER_QUERIES, run_query
from repro.serve import protocol
from repro.serve.daemon import ServeContext

QUERY_NAMES = tuple(name for name, _fn in PAPER_QUERIES)

#: Small navigation budget: forces eviction pressure during the run.
BUFFER_BYTES = 64 * 1024
THREADS = 6


@pytest.fixture(scope="module")
def context(tiny_repo, test_refinement_config, tmp_path_factory):
    built = ServeContext.build(
        tiny_repo,
        tmp_path_factory.mktemp("concurrent"),
        buffer_bytes=BUFFER_BYTES,
        stripes=4,
        refinement=test_refinement_config,
    )
    yield built
    built.close()


def _pool_state(context):
    stats = context.buffer_stats()
    return {
        direction: (s["pinned_entries"], s["pinned_bytes"])
        for direction, s in stats.items()
    }


def test_concurrent_mix_matches_serial(context):
    serial_digests = {
        name: protocol.payload_digest(
            run_query(context.serial_engine(), name).payload
        )
        for name in QUERY_NAMES
    }
    pins_before = _pool_state(context)
    totals_before = {
        direction: snapshot.get("bytes_read", 0)
        for direction, snapshot in context.shared_totals().items()
    }

    results: list[dict[str, str]] = [{} for _ in range(THREADS)]
    session_bytes: list[dict[str, int]] = [{} for _ in range(THREADS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS)

    def worker(index: int) -> None:
        try:
            client = context.make_engine(f"thread-{index}")
            try:
                barrier.wait()
                # Full mix, rotated per thread so different queries overlap.
                for j in range(len(QUERY_NAMES)):
                    name = QUERY_NAMES[(index + j) % len(QUERY_NAMES)]
                    result = run_query(client.engine, name)
                    results[index][name] = protocol.payload_digest(
                        result.payload
                    )
                # Invariants hold mid-flight, from any thread.
                for direction in ("forward", "backward"):
                    store = getattr(context, direction).store
                    store._pool.check_invariants()
                    stats = store.buffer_stats()
                    assert stats["used_bytes"] <= stats["capacity_bytes"]
                session_bytes[index] = {
                    direction: stats.get("bytes_read", 0)
                    for direction, stats in client.io_stats().items()
                }
            finally:
                client.close()
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    # 1. Results identical to serial, for every thread and query.
    for digests in results:
        assert digests == serial_digests
    # 2. Pins never evicted: same pinned entries and bytes as before.
    assert _pool_state(context) == pins_before
    # 3. Budgets respected after the storm.
    for direction in ("forward", "backward"):
        store = getattr(context, direction).store
        store._pool.check_invariants()
        stats = store.buffer_stats()
        assert stats["used_bytes"] <= stats["capacity_bytes"]
    # 4. Conservation: shared growth equals the sum of what the sessions
    # attributed (all sessions are closed, so totals are in the base).
    for direction in ("forward", "backward"):
        grown = (
            context.shared_totals()[direction].get("bytes_read", 0)
            - totals_before[direction]
        )
        attributed = sum(bytes_[direction] for bytes_ in session_bytes)
        assert grown == attributed


def test_sessions_see_warm_shared_cache(context):
    # A fresh session benefits from graphs cached by earlier traffic:
    # the pool is shared even though the accounting is per-session.
    with context.forward.store.session(label="warm-check") as session:
        session.out_neighbors(0)
        session.out_neighbors(0)
        stats = session.io_stats()
        assert stats.get("buffer_hits", 0) > 0
