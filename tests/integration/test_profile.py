"""End-to-end tests for the access-pattern profiler pipeline.

The acceptance criteria live here: the Mattson prediction must agree with
the measured mini-sweep, the seek and hot-set sections must be non-empty
on a real workload, ``repro profile`` must emit a schema-valid bench
report, and an *inactive* profiler must do no tracing work at all during
a build.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.experiments import profile


@pytest.fixture(scope="module")
def queries_result():
    """One shared small profiled query run (the expensive fixture)."""
    return profile.run(
        size=1200, scheme="s-node", capacities_kb=(16, 64), trials=2
    )


class TestQueriesWorkload:
    def test_prediction_matches_measurement_within_one_percent(
        self, queries_result
    ):
        assert queries_result.validation  # mini-sweep actually ran
        assert queries_result.worst_delta < 0.01

    def test_curves_cover_every_sweep_query(self, queries_result):
        from repro.experiments.buffer_sweep import SWEEP_QUERIES

        assert set(queries_result.curves) == set(SWEEP_QUERIES)
        for curve in queries_result.curves.values():
            assert curve.accesses > 0

    def test_seek_profile_nonempty(self, queries_result):
        assert queries_result.seek is not None
        assert queries_result.seek.total_reads > 0
        assert 0.0 < queries_result.seek.sequential_fraction <= 1.0

    def test_hot_supernodes_nonempty(self, queries_result):
        assert queries_result.heatmap is not None
        assert queries_result.heatmap.hot_supernodes(5)

    def test_render_and_results_payload(self, queries_result):
        text = profile.render(queries_result, top=5)
        assert "miss-ratio curves" in text
        assert "predicted vs measured" in text
        payload = profile.to_results(queries_result, (16, 64), top=5)
        json.dumps(payload)  # must be serializable as-is
        assert payload["mrc"]["query1"]["at"]["16384"]
        assert payload["seek_profile"]["total_reads"] > 0
        assert payload["heatmap"]["hot_supernodes"]

    def test_events_dump_has_phase_markers(self, queries_result, tmp_path):
        path = tmp_path / "events.jsonl"
        profile.write_events(queries_result, path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        phases = [r["name"] for r in records if r["type"] == "phase"]
        assert phases == ["query1", "query5", "query6"]
        assert any(r["type"] == "io" for r in records)
        assert any(r["type"] in ("hit", "miss") for r in records)


class TestBuildWorkload:
    def test_build_profile_has_all_sections(self):
        result = profile.run(size=800, workload="build", trials=1)
        assert "build" in result.curves
        assert result.curves["build"].accesses > 0
        assert result.seek is not None and result.seek.total_reads > 0
        assert result.heatmap is not None
        assert result.heatmap.hot_supernodes(3)


class TestValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ReproError):
            profile.run(size=800, scheme="btree")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError):
            profile.run(size=800, workload="writes")


class TestInactiveOverhead:
    def test_build_does_no_tracing_work_when_profiler_inactive(
        self, tmp_path, monkeypatch
    ):
        """Without activation, a build must never touch a tracer: every
        recording method is rigged to blow up, and the build still runs."""
        from repro.obs.profile.trace import AccessTracer
        from repro.snode.build import build_snode
        from repro.webdata.generator import GeneratorConfig, generate_web

        def boom(self, *args, **kwargs):
            raise AssertionError("profiler work performed while inactive")

        for name in (
            "record_io",
            "record_page",
            "record_forget",
            "record_buffer",
            "record_admit",
            "record_drop",
        ):
            monkeypatch.setattr(AccessTracer, name, boom)

        repository = generate_web(GeneratorConfig(num_pages=400, seed=3))
        build = build_snode(repository, tmp_path / "sn")
        build.store.drop_buffers()
        build.store.out_neighbors(0)
        build.store.close()


class TestBufferSweepPredict:
    def test_predictions_track_measured_points(self):
        from repro.experiments import buffer_sweep

        points, predictions = buffer_sweep.run(
            size=1000,
            buffer_sizes_kb=(16, 64),
            trials=2,
            schemes=("s-node",),
            predict=True,
        )
        assert points and predictions
        worst = 0.0
        for point in points:
            curve = predictions[(point.scheme, point.query)]
            worst = max(
                worst, abs(curve.hit_ratio(point.buffer_kb * 1024) - point.hit_ratio)
            )
        assert worst < 0.01
        report = buffer_sweep.prediction_report(points, predictions)
        assert "predicted" in report


class TestCli:
    def test_repro_profile_emits_validated_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.report import load_report

        assert (
            main(
                [
                    "profile",
                    "--size",
                    "1000",
                    "--capacities-kb",
                    "16",
                    "--trials",
                    "1",
                    "--top",
                    "3",
                    "--json",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "miss-ratio curves" in out
        report = load_report(tmp_path / "BENCH_profile.json")
        results = report["results"]
        assert results["worst_validation_delta"] < 0.01
        assert results["seek_profile"]["total_reads"] > 0
        assert results["heatmap"]["hot_supernodes"]

    def test_quiet_suppresses_report_text(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "profile",
                    "--size",
                    "1000",
                    "--capacities-kb",
                    "16",
                    "--trials",
                    "1",
                    "--quiet",
                    "--json",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "miss-ratio" not in capsys.readouterr().out
