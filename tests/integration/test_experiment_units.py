"""Pure-unit tests for experiment helper logic (no heavy builds)."""

from __future__ import annotations

import pytest

from repro.experiments.queries import (
    SCHEMES,
    QueryExperiment,
    QueryTiming,
)
from repro.query.workload import PAPER_QUERIES


def make_experiment(snode_ms: float, others_ms: float) -> QueryExperiment:
    experiment = QueryExperiment(num_pages=1000, buffer_bytes=1024)
    for scheme in SCHEMES:
        for query_name, _fn in PAPER_QUERIES:
            ms = snode_ms if scheme == "s-node" else others_ms
            experiment.timings[(scheme, query_name)] = QueryTiming(
                wall_ms=ms,
                simulated_ms=ms,
                disk_seeks=1,
                bytes_read=100,
            )
    return experiment


class TestReductionTable:
    def test_uniform_advantage(self):
        experiment = make_experiment(snode_ms=10.0, others_ms=100.0)
        reductions = experiment.reduction_vs_next_best()
        assert all(value == pytest.approx(90.0) for value in reductions.values())

    def test_snode_slower_gives_negative_reduction(self):
        experiment = make_experiment(snode_ms=200.0, others_ms=100.0)
        reductions = experiment.reduction_vs_next_best()
        assert all(value == pytest.approx(-100.0) for value in reductions.values())

    def test_zero_baseline_handled(self):
        experiment = make_experiment(snode_ms=0.0, others_ms=0.0)
        reductions = experiment.reduction_vs_next_best()
        assert all(value == 0.0 for value in reductions.values())

    def test_covers_every_query(self):
        experiment = make_experiment(10.0, 20.0)
        assert set(experiment.reduction_vs_next_best()) == {
            name for name, _fn in PAPER_QUERIES
        }


class TestCompressionArithmetic:
    def test_eight_gb_extrapolation_matches_paper_formula(self):
        # Paper: 15.2 bits/edge at mean degree 14 -> ~323M pages in 8 GB.
        from repro.experiments.compression import MEMORY_BYTES

        bits_per_edge = 15.2
        mean_degree = 14.0
        max_pages = int(MEMORY_BYTES * 8 / (mean_degree * bits_per_edge))
        assert 300_000_000 < max_pages < 340_000_000


class TestHarnessScaling:
    def test_scale_factor_env(self, monkeypatch):
        from repro.experiments import harness

        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert harness.scale_factor() == 2.5

    def test_invalid_scale_warns_and_names_value(self, monkeypatch):
        from repro.experiments import harness

        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.warns(RuntimeWarning, match="bogus"):
            assert harness.scale_factor() == 1.0

    @pytest.mark.parametrize("raw", ["0", "-1", "-0.5"])
    def test_nonpositive_scale_rejected(self, monkeypatch, raw):
        from repro.errors import ReproError
        from repro.experiments import harness

        monkeypatch.setenv("REPRO_SCALE", raw)
        with pytest.raises(ReproError, match="positive"):
            harness.scale_factor()

    def test_master_size_floor(self, monkeypatch):
        from repro.experiments import harness

        monkeypatch.setenv("REPRO_SCALE", "0.000001")
        assert harness.master_size() == 1000

    def test_sweep_shape_matches_paper(self, monkeypatch):
        from repro.experiments import harness

        monkeypatch.setenv("REPRO_SCALE", "1")
        sizes = harness.sweep_sizes()
        assert len(sizes) == 5
        # The paper's 25/50/75/100/115M shape: roughly equal increments.
        ratios = [sizes[i + 1] / sizes[i] for i in range(4)]
        assert all(1.1 < r <= 2.1 for r in ratios)
