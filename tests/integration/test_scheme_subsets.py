"""The Figure 11 driver honors scheme subsets and custom disk models."""

from __future__ import annotations

from repro.experiments import queries
from repro.query.workload import PAPER_QUERIES


class TestSchemeSubsets:
    def test_single_scheme_run(self):
        experiment = queries.run(
            size=600,
            trials=1,
            schemes=("flat-file",),
            buffer_bytes=64 * 1024,
        )
        assert set(key[0] for key in experiment.timings) == {"flat-file"}
        assert len(experiment.timings) == len(PAPER_QUERIES)

    def test_pure_wall_time_mode(self):
        experiment = queries.run(
            size=600,
            trials=1,
            schemes=("flat-file",),
            seek_ms=0.0,
            mbps=float("inf"),
            cpu_scale=1.0,
        )
        for timing in experiment.timings.values():
            assert timing.simulated_ms == timing.wall_ms

    def test_seek_cost_dominates_when_configured(self):
        experiment = queries.run(
            size=600,
            trials=1,
            schemes=("flat-file",),
            seek_ms=1000.0,
            mbps=float("inf"),
            cpu_scale=0.0,
        )
        timing = experiment.timings[("flat-file", "query1")]
        assert timing.simulated_ms == timing.disk_seeks * 1000.0
