"""Smoke + shape tests for every experiment driver at miniature scale.

These are the integration tests that tie the whole system together: each
paper artifact's ``run()`` must execute end-to-end and produce results of
the right structure (exact magnitudes are the benchmarks' business).
"""

from __future__ import annotations

import pytest

from repro.experiments import (  # noqa: F401  (package import sanity)
    harness,
)
from repro.experiments.harness import format_table
from repro.query.workload import PAPER_QUERIES


class TestHarness:
    def test_sweep_sizes_shape(self):
        sizes = harness.sweep_sizes()
        assert len(sizes) == 5
        assert sizes == sorted(sizes)

    def test_dataset_prefix_property(self):
        small = harness.dataset(500)
        assert small.num_pages == 500

    def test_format_table(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 3.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]


class TestScalability:
    def test_run_and_report(self):
        from repro.experiments import scalability

        points = scalability.run(sizes=[400, 800, 1200])
        assert [p.num_pages for p in points] == [400, 800, 1200]
        assert all(p.num_supernodes > 0 for p in points)
        assert all(p.supernode_graph_bytes > 0 for p in points)
        # Growth must not exceed input growth (sublinearity, coarse check).
        assert (
            points[-1].num_supernodes / points[0].num_supernodes
            <= 1200 / 400 + 0.5
        )
        text = scalability.report(points)
        assert "supernodes" in text

    def test_largest_policy(self):
        from repro.experiments import scalability

        points = scalability.run(sizes=[400], policy="largest")
        assert points[0].num_supernodes > 0


class TestCompression:
    def test_run_shape(self):
        from repro.experiments import compression

        rows, mean_degree = compression.run(sizes=[600])
        assert {r.scheme for r in rows} == {"plain-huffman", "link3", "s-node"}
        assert mean_degree > 1
        for row in rows:
            assert 0 < row.bits_per_edge_wg < 64
            assert 0 < row.bits_per_edge_wgt < 64
            assert row.max_pages_wg > 0
        by_name = {r.scheme: r for r in rows}
        # Both structured schemes must beat plain Huffman (Table 1 shape).
        assert (
            by_name["s-node"].bits_per_edge_wg
            < by_name["plain-huffman"].bits_per_edge_wg
        )
        assert (
            by_name["link3"].bits_per_edge_wg
            < by_name["plain-huffman"].bits_per_edge_wg
        )
        text = compression.report(rows, mean_degree)
        assert "bits/edge" in text


class TestAccessTime:
    def test_run_shape(self):
        from repro.experiments import access_time

        rows, histograms = access_time.run(size=500)
        # One sequential + one random distribution per scheme, populated.
        assert len(histograms) == 2 * len(rows)
        for histogram in histograms.values():
            assert histogram.count > 0
        assert {r.scheme for r in rows} == {"plain-huffman", "link3", "s-node"}
        for row in rows:
            assert row.sequential_ns_per_edge > 0
            assert row.random_ns_per_edge > 0
        by_name = {r.scheme: r for r in rows}
        # Table 2 shape: the simple Huffman decode is the fastest random
        # access among the compressed schemes.
        assert by_name["plain-huffman"].random_ns_per_edge <= min(
            by_name["link3"].random_ns_per_edge,
            by_name["s-node"].random_ns_per_edge,
        )
        assert "sequential" in access_time.report(rows)


class TestQueries:
    @pytest.fixture(scope="class")
    def experiment(self):
        from repro.experiments import queries

        return queries.run(size=900, trials=1, buffer_bytes=128 * 1024)

    def test_all_cells_measured(self, experiment):
        from repro.experiments.queries import SCHEMES

        for scheme in SCHEMES:
            for query_name, _fn in PAPER_QUERIES:
                timing = experiment.timings[(scheme, query_name)]
                assert timing.simulated_ms >= 0.0

    def test_snode_instrumentation_populated(self, experiment):
        loaded = [
            experiment.timings[("s-node", name)].snode_intranode_loaded
            for name, _fn in PAPER_QUERIES
        ]
        assert any(count > 0 for count in loaded)

    def test_reductions_computable(self, experiment):
        reductions = experiment.reduction_vs_next_best()
        assert set(reductions) == {name for name, _fn in PAPER_QUERIES}

    def test_report_renders(self, experiment):
        from repro.experiments import queries

        text = queries.report(experiment)
        assert "query1" in text and "reduction" in text


class TestBufferSweep:
    def test_run_shape(self):
        from repro.experiments import buffer_sweep

        points = buffer_sweep.run(
            size=900, buffer_sizes_kb=(8, 256), trials=1
        )
        # Both default schemes sweep the same grid through the one
        # set_buffer_bytes() protocol: 2 schemes x 2 sizes x 3 queries.
        assert {p.scheme for p in points} == {"s-node", "relational"}
        assert {p.query for p in points} == {"query1", "query5", "query6"}
        assert len(points) == 12
        text = buffer_sweep.report(points)
        assert "buffer" in text
        assert "relational/query1" in text

    def test_single_scheme_selection(self):
        from repro.experiments import buffer_sweep

        points = buffer_sweep.run(
            size=600, buffer_sizes_kb=(8,), trials=1, schemes=("s-node",)
        )
        assert {p.scheme for p in points} == {"s-node"}
        assert len(points) == 3

    def test_larger_buffer_never_much_worse(self):
        from repro.experiments import buffer_sweep

        points = buffer_sweep.run(size=900, buffer_sizes_kb=(8, 512), trials=1)
        by_curve: dict[tuple[str, str], dict[int, float]] = {}
        for point in points:
            by_curve.setdefault((point.scheme, point.query), {})[
                point.buffer_kb
            ] = point.simulated_ms
        # Generous bound: these are single-trial wall-clock-inclusive
        # numbers, so allow scheduling jitter; the real shape claim is
        # checked by the Figure 12 benchmark at full scale.
        for curve in by_curve.values():
            assert curve[512] <= curve[8] * 3.0 + 20.0


class TestAblations:
    def test_run_shape(self):
        from repro.experiments import ablations

        rows = ablations.run(size=600)
        names = [r.configuration for r in rows]
        assert "full S-Node" in names
        by_name = {r.configuration: r for r in rows}
        # Reference encoding must help (its removal may not shrink payload).
        assert (
            by_name["full S-Node"].payload_bytes
            <= by_name["no reference encoding"].payload_bytes
        )
        assert by_name["always-positive superedges"].negative_superedges == 0
        assert "bits/edge" in ablations.report(rows)


class TestServeExperiment:
    def test_run_shape_with_overload_sweep(self):
        from repro.experiments import serve

        outcome = serve.run(
            size=400,
            concurrency=3,
            requests_per_client=6,
            workers=2,
            queue_limit=2,
        )
        results = outcome["results"]
        assert results["matches_serial"] is True
        assert results["metrics_conserved"] is True
        assert results["requests_conserved"] is True
        assert results["attribution_conserved"] is True
        assert results["traces_propagated"] is True
        assert results["requests_ok"] == 18
        # Per-op attribution uses marker-free keys mirroring
        # counter_growth, and attributes real work to every query.
        assert set(results["attribution"]) == {
            f"query{i}" for i in range(1, 7)
        }
        for counters in results["attribution"].values():
            assert set(counters) <= {
                "bytes", "seek_count", "hits", "pinned_hits", "misses",
                "loads", "intranode", "superedge", "degraded",
            }
        assert sum(
            counters.get("hits", 0) + counters.get("misses", 0)
            for counters in results["attribution"].values()
        ) > 0
        assert set(results["queue_wait"]) == {
            "queue_wait_ms_p50", "queue_wait_ms_p99",
        }
        assert results["outcome_totals"]["ok"] >= 18
        # The sweep covers at, past and far past the admission limit.
        levels = results["overload"]
        assert [level["clients"] for level in levels] == [2, 4, 8]
        for level in levels:
            assert level["requests_conserved"] is True
            assert level["completed"] + level["gave_up"] == level["offered"]
            assert level["queue_wait_ms_p99"] >= 0
            assert 0 <= level["shed_rate_pct"] <= 100
        assert outcome["histograms"]["queue_wait"]["count"] == 18
        text = serve.report(results)
        assert "overload sweep" in text
        assert "requests conserved" in text
