"""Crash-point sweep, bit-flip fuzz and graceful degradation.

The contract under test (the durability model of DESIGN.md):

* killing a build at **any** write-op index leaves, on reopen, either a
  clean ``StorageError`` ("partial build") or a lossless committed build —
  never a third outcome, and never silent corruption;
* a build crashed **over an existing valid build** always preserves the
  old build losslessly (nothing at the final root is touched before the
  atomic rename);
* a flipped bit anywhere in a payload index file always surfaces as a
  :class:`~repro.errors.CorruptionError` — never as wrong adjacency and
  never as an uncaught decoder error;
* in ``on_corruption="degrade"`` mode the corrupt region is quarantined
  and every *other* supernode keeps answering exactly, with the
  ``degraded_reads`` counter recording the loss;
* ``fsck --repair`` quarantines exactly the corrupt regions and a reopened
  store honours the quarantine file.
"""

from __future__ import annotations

import random
import shutil

import pytest

from repro.errors import CorruptionError, StorageError
from repro.snode.build import BuildOptions, build_snode
from repro.snode.storage import read_quarantine, write_snode
from repro.snode.store import SNodeStore
from repro.storage import faults
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.fsck import fsck


@pytest.fixture(scope="module")
def crash_build(tiny_repo, test_refinement_config, tmp_path_factory):
    """One normal build over the tiny repository, plus its ground truth."""
    root = tmp_path_factory.mktemp("crash_base") / "snode"
    build = build_snode(
        tiny_repo, root, BuildOptions(refinement=test_refinement_config)
    )
    baseline = {page: row for page, row in build.store.iterate_all()}
    build.store.close()
    return build, baseline


def _reopen_outcome(root, baseline) -> str:
    """Classify a post-crash reopen: 'partial' or 'lossless' (or fail)."""
    try:
        store = SNodeStore(root)
    except StorageError as exc:
        message = str(exc)
        assert "partial" in message or "no S-Node build" in message, message
        return "partial"
    with store:
        assert {page: row for page, row in store.iterate_all()} == baseline
    return "lossless"


class TestCrashPointSweep:
    def test_every_write_op_crash_is_partial_or_lossless(
        self, crash_build, tmp_path
    ):
        build, baseline = crash_build
        with faults.activated(FaultPlan(seed=0)) as plan:
            write_snode(build.model, tmp_path / "count")
        total_ops = plan.write_ops
        assert total_ops >= 8  # index files + 5 aux tables + manifest + commit

        outcomes = []
        for index in range(total_ops):
            root = tmp_path / f"crash_{index}"
            plan = FaultPlan(seed=100 + index, crash_at_write=index, torn_writes=True)
            with faults.activated(plan):
                with pytest.raises(SimulatedCrash):
                    write_snode(build.model, root)
            outcomes.append(_reopen_outcome(root, baseline))
        # Every pre-commit crash leaves a cleanly reported partial build.
        assert outcomes == ["partial"] * total_ops

    def test_crash_over_existing_build_preserves_it(self, crash_build, tmp_path):
        build, baseline = crash_build
        root = tmp_path / "steady"
        write_snode(build.model, root)
        with faults.activated(FaultPlan(seed=0)) as plan:
            write_snode(build.model, tmp_path / "count")
        total_ops = plan.write_ops

        for index in range(total_ops):
            plan = FaultPlan(seed=200 + index, crash_at_write=index, torn_writes=True)
            with faults.activated(plan):
                with pytest.raises(SimulatedCrash):
                    write_snode(build.model, root)
            # The committed build at `root` must survive every crash intact.
            assert _reopen_outcome(root, baseline) == "lossless"

    def test_crash_index_beyond_schedule_builds_losslessly(
        self, crash_build, tmp_path
    ):
        build, baseline = crash_build
        root = tmp_path / "after"
        with faults.activated(FaultPlan(seed=1, crash_at_write=10_000)):
            write_snode(build.model, root)
        assert _reopen_outcome(root, baseline) == "lossless"


def _flip_one_bit(root, seed: int) -> None:
    """Flip a seeded random bit inside a random payload index file."""
    rng = random.Random(seed)
    index_files = sorted(root.glob("index_*.dat"))
    path = rng.choice(index_files)
    data = bytearray(path.read_bytes())
    data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))


@pytest.fixture(scope="module")
def steady_root(crash_build, tmp_path_factory):
    """A committed build used as the pristine source for corruption copies."""
    root = tmp_path_factory.mktemp("fuzz_base") / "snode"
    build, _baseline = crash_build
    write_snode(build.model, root)
    return root


class TestBitFlipFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_payload_flip_always_raises_corruption_error(
        self, crash_build, steady_root, tmp_path, seed
    ):
        _build, _baseline = crash_build
        root = tmp_path / "flipped"
        shutil.copytree(steady_root, root)
        _flip_one_bit(root, seed)
        with SNodeStore(root) as store:
            with pytest.raises(CorruptionError):
                for _page, _row in store.iterate_all():
                    pass

    def test_aux_table_flip_detected_at_open(self, steady_root, tmp_path):
        for name in ("pointers.bin", "pageid.bin", "newid.bin", "supernode.bin"):
            root = tmp_path / f"aux_{name}"
            shutil.copytree(steady_root, root)
            path = root / name
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0x40
            path.write_bytes(bytes(data))
            with pytest.raises(CorruptionError):
                SNodeStore(root)

    def test_truncated_manifest_is_clean_storage_error(self, steady_root, tmp_path):
        root = tmp_path / "truncated"
        shutil.copytree(steady_root, root)
        manifest = root / "manifest.json"
        manifest.write_bytes(manifest.read_bytes()[: manifest.stat().st_size // 2])
        with pytest.raises(StorageError, match="JSON"):
            SNodeStore(root)


class TestGracefulDegradation:
    def test_degrade_mode_keeps_serving_unaffected_supernodes(
        self, crash_build, steady_root, tmp_path
    ):
        _build, baseline = crash_build
        root = tmp_path / "degrade"
        shutil.copytree(steady_root, root)
        _flip_one_bit(root, seed=3)
        with SNodeStore(root, on_corruption="degrade") as store:
            answers = {page: row for page, row in store.iterate_all()}
            assert store.degraded_reads > 0
            quarantined = store.quarantined
            assert quarantined
        # Pages of unaffected supernodes answer exactly as the clean build.
        affected = {entry[1] for entry in quarantined}
        with SNodeStore(root) as probe:
            for page, row in baseline.items():
                # A corrupt region degrades only its source supernode's rows.
                if probe.supernode_of(page) in affected:
                    continue
                assert answers[page] == row

    def test_degrade_mode_is_validated(self, steady_root):
        with pytest.raises(ValueError, match="on_corruption"):
            SNodeStore(steady_root, on_corruption="panic")

    def test_fsck_repair_quarantines_exactly_corrupt_regions(
        self, steady_root, tmp_path
    ):
        root = tmp_path / "repair"
        shutil.copytree(steady_root, root)
        _flip_one_bit(root, seed=5)
        report = fsck(root, repair=True)
        assert not report.ok
        assert report.repaired  # exactly the CRC-failing regions
        region_findings = [f for f in report.findings if f.region]
        assert sorted(f.region for f in region_findings) == sorted(report.repaired)
        assert read_quarantine(root) == {tuple(r) for r in report.repaired}
        # A reopened store honours the quarantine even in raise mode: the
        # lost region serves empty instead of raising.
        with SNodeStore(root) as store:
            for _page, _row in store.iterate_all():
                pass
            assert store.degraded_reads > 0

    def test_fsck_clean_build_reports_ok(self, steady_root):
        report = fsck(steady_root)
        assert report.ok
        assert report.state == "valid"
        assert not report.findings
        assert report.regions_checked > 0

    def test_fsck_partial_build_reported(self, crash_build, tmp_path):
        build, _baseline = crash_build
        root = tmp_path / "partial"
        with faults.activated(FaultPlan(seed=9, crash_at_write=2, torn_writes=True)):
            with pytest.raises(SimulatedCrash):
                write_snode(build.model, root)
        report = fsck(root)
        assert not report.ok
        assert report.state == "partial"


class TestQueryEngineWiring:
    def test_engine_propagates_policy_and_sums_degraded_reads(self):
        from repro.baselines.base import GraphRepresentation
        from repro.query.engine import QueryEngine

        class Stub(GraphRepresentation):
            name = "stub"

            def __init__(self) -> None:
                self.mode = "raise"

            def out_neighbors(self, page):
                return []

            def iterate_all(self):
                return iter(())

            def size_bytes(self):
                return 0

            @property
            def num_pages(self):
                return 4

            @property
            def num_edges(self):
                return 0

            def set_on_corruption(self, mode):
                self.mode = mode

        class FakeRepo:
            num_pages = 4

        forward, backward = Stub(), Stub()
        forward.metrics.inc("degraded_reads", 2)
        backward.metrics.inc("degraded_reads", 3)
        engine = QueryEngine(
            FakeRepo(), None, None, forward, backward, on_corruption="degrade"
        )
        assert forward.mode == "degrade"
        assert backward.mode == "degrade"
        assert engine.degraded_reads == 5
