"""Tests for graph algorithms (BFS, SCC, PageRank, HITS, neighborhoods)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph.algorithms import (
    bfs_distances,
    degree_statistics,
    hits,
    in_neighborhood,
    kleinberg_base_set,
    out_neighborhood,
    pagerank,
    strongly_connected_components,
)
from repro.graph.digraph import Digraph


def path_graph(n: int) -> Digraph:
    return Digraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Digraph:
    return Digraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


class TestBFS:
    def test_distances_on_path(self):
        distances = bfs_distances(path_graph(5), [0])
        assert list(distances) == [0, 1, 2, 3, 4]

    def test_unreachable_marked_minus_one(self):
        graph = Digraph.from_edges(3, [(0, 1)])
        distances = bfs_distances(graph, [0])
        assert distances[2] == -1

    def test_multi_source(self):
        # Directed path: source 4 reaches nothing new, source 0 the rest.
        distances = bfs_distances(path_graph(5), [0, 4])
        assert list(distances) == [0, 1, 2, 3, 0]

    def test_invalid_source(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), [5])


class TestSCC:
    def test_cycle_is_one_component(self):
        components = strongly_connected_components(cycle_graph(6))
        assert len(components) == 1
        assert sorted(components[0]) == list(range(6))

    def test_dag_gives_singletons(self):
        components = strongly_connected_components(path_graph(5))
        assert sorted(len(c) for c in components) == [1] * 5

    def test_two_cycles_with_bridge(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        components = strongly_connected_components(Digraph.from_edges(6, edges))
        sizes = sorted(len(c) for c in components)
        assert sizes == [3, 3]

    def test_empty_graph(self):
        assert strongly_connected_components(Digraph.from_edges(0, [])) == []

    def test_deep_chain_no_recursion_error(self):
        # An iterative implementation must survive 50k-deep structures.
        graph = path_graph(50_000)
        components = strongly_connected_components(graph)
        assert len(components) == 50_000


class TestPageRank:
    def test_scores_sum_to_one(self):
        scores = pagerank(cycle_graph(10))
        assert scores.sum() == pytest.approx(1.0)

    def test_symmetric_cycle_is_uniform(self):
        scores = pagerank(cycle_graph(8))
        assert np.allclose(scores, 1 / 8, atol=1e-8)

    def test_sink_handled(self):
        graph = Digraph.from_edges(3, [(0, 2), (1, 2)])
        scores = pagerank(graph)
        assert scores.sum() == pytest.approx(1.0)
        assert scores[2] > scores[0]

    def test_hub_attracts_rank(self):
        edges = [(i, 0) for i in range(1, 10)]
        scores = pagerank(Digraph.from_edges(10, edges))
        assert scores[0] == max(scores)

    def test_invalid_damping(self):
        with pytest.raises(GraphError):
            pagerank(cycle_graph(3), damping=1.5)

    def test_empty_graph(self):
        assert len(pagerank(Digraph.from_edges(0, []))) == 0


class TestHITS:
    def test_authority_on_star(self):
        # pages 1..4 all point to 0: 0 is the authority, others hubs
        edges = [(i, 0) for i in range(1, 5)]
        graph = Digraph.from_edges(5, edges)
        authority, hub = hits(graph, graph.transpose(), list(range(5)))
        assert authority[0] == max(authority.values())
        assert hub[0] == min(hub.values())

    def test_scores_for_all_requested_pages(self):
        graph = cycle_graph(6)
        authority, hub = hits(graph, graph.transpose(), [0, 1, 2])
        assert set(authority) == {0, 1, 2}
        assert set(hub) == {0, 1, 2}


class TestNeighborhoods:
    def test_out_neighborhood(self):
        graph = Digraph.from_adjacency([[1, 2], [3], [], []])
        assert out_neighborhood(graph, [0, 1]) == {1, 2, 3}

    def test_in_neighborhood_via_transpose(self):
        graph = Digraph.from_adjacency([[1, 2], [2], [], []])
        assert in_neighborhood(graph.transpose(), [2]) == {0, 1}

    def test_kleinberg_base_set(self):
        graph = Digraph.from_adjacency([[1], [2], [], [0]])
        base = kleinberg_base_set(graph, graph.transpose(), [0])
        assert base == {0, 1, 3}

    def test_degree_statistics(self):
        stats = degree_statistics(Digraph.from_adjacency([[1, 2], [], []]))
        assert stats["mean_out_degree"] == pytest.approx(2 / 3)
        assert stats["max_out_degree"] == 2
        assert stats["max_in_degree"] == 1


@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=2, max_value=20).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=60,
            ),
        )
    )
)
def test_property_scc_partitions_vertices(case):
    n, edges = case
    graph = Digraph.from_edges(n, edges)
    components = strongly_connected_components(graph)
    flattened = sorted(v for component in components for v in component)
    assert flattened == list(range(n))


@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=2, max_value=15).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=1,
                max_size=50,
            ),
        )
    )
)
def test_property_pagerank_is_probability_vector(case):
    n, edges = case
    scores = pagerank(Digraph.from_edges(n, edges))
    assert scores.sum() == pytest.approx(1.0, abs=1e-6)
    assert (scores >= 0).all()
