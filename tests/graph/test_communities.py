"""Tests for community trawling and diameter estimation."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.communities import (
    BipartiteCore,
    effective_diameter,
    reachability_profile,
    trawl_bipartite_cores,
)
from repro.graph.digraph import Digraph, GraphBuilder


def planted_core_graph() -> Digraph:
    """Pages 0-3 (fans) all link to 10-12 (centers), plus noise."""
    builder = GraphBuilder(20)
    for fan in range(4):
        for center in (10, 11, 12):
            builder.add_edge(fan, center)
    # noise edges
    builder.add_edges([(5, 6), (6, 7), (7, 5), (8, 13), (9, 14)])
    return builder.build()


class TestTrawling:
    def test_finds_planted_core(self):
        cores = trawl_bipartite_cores(planted_core_graph(), fans=3, centers=3)
        assert any(
            set(core.centers) == {10, 11, 12} and len(core.fans) >= 3
            for core in cores
        )

    def test_noise_does_not_produce_cores(self):
        builder = GraphBuilder(10)
        builder.add_edges([(0, 5), (1, 6), (2, 7), (3, 8)])
        cores = trawl_bipartite_cores(builder.build(), fans=2, centers=2)
        assert cores == []

    def test_pruning_removes_low_degree_pages(self):
        # A fan with out-degree below `centers` can never participate.
        graph = planted_core_graph()
        cores = trawl_bipartite_cores(graph, fans=3, centers=3)
        for core in cores:
            assert 5 not in core.fans

    def test_max_cores_bound(self):
        # A dense bipartite block yields many (2,2) cores; the bound holds.
        builder = GraphBuilder(12)
        for fan in range(6):
            for center in range(6, 12):
                builder.add_edge(fan, center)
        cores = trawl_bipartite_cores(builder.build(), fans=2, centers=2, max_cores=7)
        assert len(cores) == 7

    def test_invalid_dimensions(self):
        with pytest.raises(GraphError):
            trawl_bipartite_cores(planted_core_graph(), fans=0, centers=2)

    def test_core_is_actually_complete(self):
        graph = planted_core_graph()
        for core in trawl_bipartite_cores(graph, fans=3, centers=3):
            for fan in core.fans:
                for center in core.centers:
                    assert graph.has_edge(fan, center)

    def test_on_generated_web(self, tiny_repo):
        # Link copying plants (i, j) cores; the trawler should find some.
        cores = trawl_bipartite_cores(
            tiny_repo.graph, fans=3, centers=3, max_cores=50
        )
        assert isinstance(cores, list)
        for core in cores[:5]:
            assert isinstance(core, BipartiteCore)
            for fan in core.fans:
                for center in core.centers:
                    assert tiny_repo.graph.has_edge(fan, center)


class TestDiameter:
    def test_path_graph_diameter(self):
        graph = Digraph.from_edges(6, [(i, i + 1) for i in range(5)])
        assert effective_diameter(graph, percentile=1.0, samples=6) == 5.0

    def test_cycle_diameter(self):
        graph = Digraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert effective_diameter(graph, percentile=1.0, samples=5) == 4.0

    def test_effective_below_max(self):
        graph = Digraph.from_edges(6, [(i, i + 1) for i in range(5)])
        assert effective_diameter(graph, percentile=0.5, samples=6) <= 5.0

    def test_empty_and_edgeless(self):
        assert effective_diameter(Digraph.from_edges(0, [])) == 0.0
        assert effective_diameter(Digraph.from_edges(4, [])) == 0.0

    def test_invalid_percentile(self):
        with pytest.raises(GraphError):
            effective_diameter(Digraph.from_edges(2, [(0, 1)]), percentile=0.0)

    def test_deterministic_under_seed(self, tiny_repo):
        a = effective_diameter(tiny_repo.graph, samples=8, seed=5)
        b = effective_diameter(tiny_repo.graph, samples=8, seed=5)
        assert a == b


class TestReachability:
    def test_strongly_connected_graph_reaches_everything(self):
        graph = Digraph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)])
        profile = reachability_profile(graph, samples=4)
        assert profile["forward_reach"] == pytest.approx(1.0)
        assert profile["backward_reach"] == pytest.approx(1.0)

    def test_generated_web_has_giant_component(self, small_repo):
        profile = reachability_profile(small_repo.graph, samples=16)
        # Reciprocal links give the generator a bow-tie: a random page
        # reaches a sizable fraction of the web.
        assert profile["forward_reach"] > 0.2

    def test_empty_graph(self):
        profile = reachability_profile(Digraph.from_edges(0, []))
        assert profile == {"forward_reach": 0.0, "backward_reach": 0.0}
