"""Tests for the CSR digraph and its builder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.graph.digraph import Digraph, GraphBuilder


def small_graph() -> Digraph:
    return Digraph.from_adjacency([[1, 2], [2], [0], []])


class TestBuilder:
    def test_empty_graph(self):
        graph = GraphBuilder(0).build()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_duplicate_edges_collapse(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        builder.add_edge(0, 2)
        graph = builder.build()
        assert graph.successors_list(0) == [1, 2]
        assert graph.num_edges == 2

    def test_adjacency_is_sorted(self):
        builder = GraphBuilder(5)
        builder.add_edges([(0, 4), (0, 1), (0, 3)])
        assert builder.build().successors_list(0) == [1, 3, 4]

    def test_out_of_range_rejected(self):
        builder = GraphBuilder(2)
        with pytest.raises(GraphError):
            builder.add_edge(0, 2)
        with pytest.raises(GraphError):
            builder.add_edge(-1, 0)

    def test_add_vertex(self):
        builder = GraphBuilder(1)
        new = builder.add_vertex()
        builder.add_edge(0, new)
        assert builder.build().successors_list(0) == [1]

    def test_add_links_matches_per_edge_adds(self):
        rows = [[1, 2, 2], [0], [], [0, 1, 3]]
        by_edge, by_links = GraphBuilder(4), GraphBuilder(4)
        for source, targets in enumerate(rows):
            for target in targets:
                by_edge.add_edge(source, target)
            by_links.add_links(source, targets)
        assert by_links.num_buffered_edges == by_edge.num_buffered_edges
        a, b = by_edge.build(), by_links.build()
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.targets, b.targets)

    def test_add_links_range_checked(self):
        builder = GraphBuilder(2)
        with pytest.raises(GraphError):
            builder.add_links(0, [1, 2])
        with pytest.raises(GraphError):
            builder.add_links(2, [0])

    def test_chunk_spill_preserves_edges(self, monkeypatch):
        # Force tiny spill chunks so a small stream crosses many chunk
        # boundaries — the built CSR must not care where they fell.
        monkeypatch.setattr(GraphBuilder, "CHUNK_EDGES", 7)
        rng = np.random.default_rng(5)
        edges = [(int(s), int(t)) for s, t in rng.integers(0, 40, size=(500, 2))]
        chunked = GraphBuilder(40)
        chunked.add_edges(edges)
        assert len(chunked._chunks) >= 500 // 7
        monkeypatch.undo()
        plain = GraphBuilder(40)
        plain.add_edges(edges)
        a, b = chunked.build(), plain.build()
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.targets, b.targets)


class TestDigraph:
    def test_degrees(self):
        graph = small_graph()
        assert graph.out_degree(0) == 2
        assert graph.out_degree(3) == 0
        assert graph.mean_out_degree() == pytest.approx(1.0)

    def test_has_edge(self):
        graph = small_graph()
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_edges_iterator(self):
        assert sorted(small_graph().edges()) == [(0, 1), (0, 2), (1, 2), (2, 0)]

    def test_vertex_range_checked(self):
        with pytest.raises(GraphError):
            small_graph().successors(4)

    def test_transpose_reverses_every_edge(self):
        graph = small_graph()
        transpose = graph.transpose()
        assert sorted(transpose.edges()) == sorted(
            (t, s) for s, t in graph.edges()
        )

    def test_transpose_involution(self):
        graph = small_graph()
        assert graph.transpose().transpose() == graph

    def test_subgraph(self):
        graph = small_graph()
        sub, mapping = graph.subgraph([0, 2])
        assert mapping == {0: 0, 2: 1}
        assert sorted(sub.edges()) == [(0, 1), (1, 0)]

    def test_subgraph_duplicate_vertices_rejected(self):
        with pytest.raises(GraphError):
            small_graph().subgraph([0, 0])

    def test_relabel_preserves_structure(self):
        graph = small_graph()
        permutation = [2, 0, 3, 1]
        relabeled = graph.relabel(permutation)
        expected = sorted(
            (permutation[s], permutation[t]) for s, t in graph.edges()
        )
        assert sorted(relabeled.edges()) == expected

    def test_relabel_requires_bijection(self):
        with pytest.raises(GraphError):
            small_graph().relabel([0, 0, 1, 2])

    def test_invalid_csr_rejected(self):
        with pytest.raises(GraphError):
            Digraph(np.array([0, 2, 1]), np.array([0, 1]))
        with pytest.raises(GraphError):
            Digraph(np.array([0, 1]), np.array([5]))


@given(
    st.integers(min_value=1, max_value=30).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=100,
            ),
        )
    )
)
def test_property_transpose_preserves_edge_count(case):
    n, edges = case
    graph = Digraph.from_edges(n, edges)
    transpose = graph.transpose()
    assert transpose.num_edges == graph.num_edges
    assert sorted(transpose.edges()) == sorted((t, s) for s, t in graph.edges())


@given(
    st.integers(min_value=1, max_value=20).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=60,
            ),
            st.randoms(use_true_random=False),
        )
    )
)
def test_property_relabel_roundtrip(case):
    n, edges, rng = case
    graph = Digraph.from_edges(n, edges)
    permutation = list(range(n))
    rng.shuffle(permutation)
    inverse = [0] * n
    for old, new in enumerate(permutation):
        inverse[new] = old
    assert graph.relabel(permutation).relabel(inverse) == graph
