"""Generator configuration knobs have the documented structural effects."""

from __future__ import annotations

from repro.graph.algorithms import strongly_connected_components
from repro.webdata.generator import GeneratorConfig, generate_web
from repro.webdata.urls import host_of


class TestReciprocalLinks:
    def test_zero_probability_gives_acyclic_graph(self):
        repo = generate_web(
            GeneratorConfig(num_pages=600, seed=9, reciprocal_link_probability=0.0)
        )
        # Evolving copying model without reciprocation: edges only point
        # backward in creation order -> no cycles.
        components = strongly_connected_components(repo.graph)
        assert max(len(c) for c in components) == 1

    def test_default_gives_giant_scc(self):
        repo = generate_web(GeneratorConfig(num_pages=600, seed=9))
        components = strongly_connected_components(repo.graph)
        assert max(len(c) for c in components) > 0.3 * repo.num_pages


class TestLocalityKnob:
    def test_higher_fraction_raises_intra_host_share(self):
        def intra_share(fraction: float) -> float:
            repo = generate_web(
                GeneratorConfig(
                    num_pages=1200, seed=5, intra_host_fraction=fraction
                )
            )
            intra = sum(
                1
                for s, t in repo.graph.edges()
                if host_of(repo.page(s).url) == host_of(repo.page(t).url)
            )
            return intra / repo.num_links

        assert intra_share(0.95) > intra_share(0.4) + 0.1


class TestDegreeKnob:
    def test_mean_degree_tracks_target(self):
        low = generate_web(GeneratorConfig(num_pages=800, seed=6, mean_out_degree=5))
        high = generate_web(GeneratorConfig(num_pages=800, seed=6, mean_out_degree=20))
        assert high.graph.mean_out_degree() > low.graph.mean_out_degree() + 4


class TestHostGrowthKnob:
    def test_higher_rate_creates_more_hosts(self):
        few = generate_web(GeneratorConfig(num_pages=800, seed=8, new_host_rate=0.2))
        many = generate_web(GeneratorConfig(num_pages=800, seed=8, new_host_rate=4.0))
        hosts_few = len({host_of(p.url) for p in few.pages})
        hosts_many = len({host_of(p.url) for p in many.pages})
        assert hosts_many > hosts_few


class TestTopicsKnob:
    def test_custom_topics_injected(self):
        topics = ((("purple", "zebra"), "stanford.edu", 0.5),)
        repo = generate_web(
            GeneratorConfig(num_pages=800, seed=2, topics=topics)
        )
        hits = [
            p
            for p in repo.pages
            if p.domain == "stanford.edu" and "purple" in p.terms
        ]
        assert hits

    def test_no_topics_means_no_phrases(self):
        repo = generate_web(GeneratorConfig(num_pages=300, seed=2, topics=()))
        assert not any("dilbert" in p.terms for p in repo.pages)
