"""Tests for the WebBase-style bulk stream format."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.webdata.webbase import read_repository, read_stream, write_stream


class TestRoundtrip:
    def test_full_roundtrip(self, tiny_repo, tmp_path):
        path = tmp_path / "crawl.wb"
        size = write_stream(tiny_repo, path)
        assert size == path.stat().st_size
        restored = read_repository(path)
        assert restored.num_pages == tiny_repo.num_pages
        assert [p.url for p in restored.pages] == [p.url for p in tiny_repo.pages]
        assert [p.terms for p in restored.pages] == [
            p.terms for p in tiny_repo.pages
        ]
        assert sorted(restored.graph.edges()) == sorted(tiny_repo.graph.edges())

    def test_streaming_order_and_ids(self, tiny_repo, tmp_path):
        path = tmp_path / "crawl.wb"
        write_stream(tiny_repo, path)
        for page_id, url, _terms, links in read_stream(path, limit=50):
            assert url == tiny_repo.page(page_id).url
            assert links == tiny_repo.graph.successors_list(page_id)

    def test_prefix_read_matches_crawl_prefix(self, tiny_repo, tmp_path):
        path = tmp_path / "crawl.wb"
        write_stream(tiny_repo, path)
        prefix = read_repository(path, limit=100)
        expected = tiny_repo.crawl_prefix(100)
        assert prefix.num_pages == 100
        assert sorted(prefix.graph.edges()) == sorted(expected.graph.edges())

    def test_limit_beyond_size_is_clamped(self, tiny_repo, tmp_path):
        path = tmp_path / "crawl.wb"
        write_stream(tiny_repo, path)
        restored = read_repository(path, limit=10**9)
        assert restored.num_pages == tiny_repo.num_pages


class TestFormatErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.wb"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(StorageError):
            list(read_stream(path))

    def test_short_header(self, tmp_path):
        path = tmp_path / "short.wb"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(StorageError):
            list(read_stream(path))

    def test_truncated_record(self, tiny_repo, tmp_path):
        path = tmp_path / "crawl.wb"
        write_stream(tiny_repo, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            list(read_stream(path))
