"""Tests for URL parsing helpers."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.webdata.urls import (
    host_of,
    in_domain,
    lexicographic_key,
    registered_domain,
    url_prefix,
    url_prefix_depth,
)


class TestHostAndDomain:
    def test_host_of_simple(self):
        assert host_of("http://www.stanford.edu/a/b.html") == "www.stanford.edu"

    def test_host_is_lowercased(self):
        assert host_of("http://WWW.Stanford.EDU/x") == "www.stanford.edu"

    def test_host_without_scheme(self):
        assert host_of("cs.stanford.edu/page.html") == "cs.stanford.edu"

    def test_empty_host_rejected(self):
        with pytest.raises(QueryError):
            host_of("http:///nothing")

    def test_registered_domain_collapses_subdomains(self):
        assert registered_domain("http://cs.stanford.edu/x") == "stanford.edu"
        assert registered_domain("ee.stanford.edu") == "stanford.edu"

    def test_registered_domain_of_two_label_host(self):
        assert registered_domain("dilbert.com") == "dilbert.com"

    def test_single_label_host(self):
        assert registered_domain("localhost") == "localhost"


class TestPrefix:
    URL = "http://www.stanford.edu/students/grad/page1.html"

    def test_depth_zero_is_host(self):
        assert url_prefix(self.URL, 0) == "www.stanford.edu"

    def test_depth_one(self):
        assert url_prefix(self.URL, 1) == "www.stanford.edu/students"

    def test_depth_two(self):
        assert url_prefix(self.URL, 2) == "www.stanford.edu/students/grad"

    def test_depth_saturates(self):
        assert url_prefix(self.URL, 9) == "www.stanford.edu/students/grad"

    def test_leaf_page_not_a_directory(self):
        assert url_prefix("http://a.com/page.html", 1) == "a.com"

    def test_trailing_slash_counts_as_directory(self):
        assert url_prefix("http://a.com/dir/", 1) == "a.com/dir"

    def test_negative_depth_rejected(self):
        with pytest.raises(QueryError):
            url_prefix(self.URL, -1)

    def test_prefix_depth(self):
        assert url_prefix_depth(self.URL) == 2
        assert url_prefix_depth("http://a.com/x.html") == 0


class TestLexicographicKey:
    def test_same_host_sorts_by_path(self):
        key_a = lexicographic_key("http://a.com/alpha.html")
        key_b = lexicographic_key("http://a.com/beta.html")
        assert key_a < key_b

    def test_sibling_hosts_of_domain_adjacent(self):
        # cs.stanford.edu and ee.stanford.edu share the reversed prefix
        # edu.stanford and must sort between each other, not apart.
        keys = sorted(
            [
                lexicographic_key("http://cs.stanford.edu/x"),
                lexicographic_key("http://www.amazon.com/y"),
                lexicographic_key("http://ee.stanford.edu/z"),
            ]
        )
        assert "stanford" in keys[1]
        assert "stanford" in keys[2]


class TestInDomain:
    def test_exact_host(self):
        assert in_domain("http://stanford.edu/x", "stanford.edu")

    def test_subdomain(self):
        assert in_domain("http://cs.stanford.edu/x", "stanford.edu")

    def test_case_insensitive(self):
        assert in_domain("http://cs.stanford.edu/x", "STANFORD.EDU")

    def test_suffix_confusion_rejected(self):
        assert not in_domain("http://notstanford.edu/x", "stanford.edu")
