"""Tests for the synthetic Web generator: determinism and the empirical
properties (Observations 1-3) the S-Node scheme depends on."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.webdata.generator import GeneratorConfig, generate_web
from repro.webdata.urls import host_of, url_prefix_depth


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = generate_web(num_pages=400, seed=5)
        b = generate_web(num_pages=400, seed=5)
        assert [p.url for p in a.pages] == [p.url for p in b.pages]
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert [p.terms for p in a.pages] == [p.terms for p in b.pages]

    def test_different_seed_different_output(self):
        a = generate_web(num_pages=400, seed=5)
        b = generate_web(num_pages=400, seed=6)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(QueryError):
            generate_web(GeneratorConfig(num_pages=10), num_pages=20)

    def test_invalid_page_count(self):
        with pytest.raises(QueryError):
            generate_web(num_pages=0)


class TestStructuralProperties:
    @pytest.fixture(scope="class")
    def repo(self):
        return generate_web(num_pages=2500, seed=11)

    def test_mean_out_degree_near_target(self, repo):
        # The paper measured ~14 on WebBase; the generator targets that zone.
        assert 8 <= repo.graph.mean_out_degree() <= 20

    def test_intra_host_locality(self, repo):
        intra = sum(
            1
            for s, t in repo.graph.edges()
            if host_of(repo.page(s).url) == host_of(repo.page(t).url)
        )
        fraction = intra / repo.num_links
        # Suel & Yuan: "around three-quarters"; accept a generous band.
        assert 0.55 <= fraction <= 0.9

    def test_host_count_sublinear(self):
        small = generate_web(num_pages=500, seed=4)
        large = generate_web(num_pages=4000, seed=4)
        hosts_small = len({host_of(p.url) for p in small.pages})
        hosts_large = len({host_of(p.url) for p in large.pages})
        assert hosts_large < hosts_small * (4000 / 500) * 0.6

    def test_urls_have_directory_structure(self, repo):
        depths = [url_prefix_depth(p.url) for p in repo.pages]
        assert max(depths) >= 2
        assert min(depths) == 0

    def test_urls_unique(self, repo):
        urls = [p.url for p in repo.pages]
        assert len(set(urls)) == len(urls)

    def test_no_self_links(self, repo):
        assert all(s != t for s, t in repo.graph.edges())

    def test_in_degree_is_heavy_tailed(self, repo):
        import numpy as np

        in_degrees = np.bincount(repo.graph.targets, minlength=repo.num_pages)
        # Top percentile should hold a disproportionate share of edges.
        top = np.sort(in_degrees)[-repo.num_pages // 100 :].sum()
        assert top / repo.num_links > 0.1

    def test_link_copying_produces_similar_rows(self, repo):
        # Observation 1: a noticeable share of pages share >=50 % of their
        # adjacency list with some earlier page *of the same host* (copies
        # come from same-host prototypes, not from adjacent crawl ids).
        by_host: dict[str, list[int]] = {}
        for page in repo.pages:
            by_host.setdefault(page.host, []).append(page.page_id)
        similar = 0
        checked = 0
        for members in by_host.values():
            for position, page in enumerate(members):
                if position == 0 or checked >= 300:
                    continue
                row = set(repo.graph.successors_list(page))
                if len(row) < 4:
                    continue
                checked += 1
                for other in members[max(0, position - 10) : position]:
                    other_row = set(repo.graph.successors_list(other))
                    if not other_row:
                        continue
                    if len(row & other_row) / len(row) >= 0.5:
                        similar += 1
                        break
        assert checked > 0
        assert similar / checked > 0.3


class TestTopics:
    @pytest.fixture(scope="class")
    def repo(self):
        return generate_web(num_pages=2500, seed=11)

    def test_seeded_phrase_present_in_domain(self, repo):
        hits = [
            p
            for p in repo.pages
            if p.domain == "stanford.edu"
            and "mobile" in p.terms
            and "networking" in p.terms
        ]
        assert hits, "seeded topic must appear in stanford.edu"

    def test_comic_sites_carry_their_words(self, repo):
        dilbert_pages = [p for p in repo.pages if p.domain == "dilbert.com"]
        if dilbert_pages:  # host sampling is random but heavily weighted
            assert any("dilbert" in p.terms for p in dilbert_pages)

    def test_every_page_has_text(self, repo):
        assert all(len(p.terms) > 10 for p in repo.pages)
