"""Tests for Repository and Page."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.webdata.corpus import Page, Repository


def make_repository() -> Repository:
    urls = [
        "http://www.stanford.edu/a.html",
        "http://cs.stanford.edu/b.html",
        "http://www.amazon.com/c.html",
        "http://www.stanford.edu/d.html",
    ]
    edges = [(0, 1), (0, 2), (1, 3), (2, 0)]
    terms = [("hello", "world"), ("mobile", "networking"), (), ("hello",)]
    return Repository.from_parts(urls, edges, terms)


class TestRepository:
    def test_basic_counts(self):
        repo = make_repository()
        assert repo.num_pages == 4
        assert repo.num_links == 4

    def test_page_lookup(self):
        repo = make_repository()
        page = repo.page(1)
        assert page.host == "cs.stanford.edu"
        assert page.domain == "stanford.edu"

    def test_page_by_url(self):
        repo = make_repository()
        assert repo.page_by_url("http://www.amazon.com/c.html").page_id == 2
        assert repo.page_by_url("http://nowhere.org/") is None

    def test_page_out_of_range(self):
        with pytest.raises(QueryError):
            make_repository().page(10)

    def test_domains(self):
        repo = make_repository()
        assert repo.domains() == ["amazon.com", "stanford.edu"]

    def test_pages_in_domain_includes_subdomains(self):
        repo = make_repository()
        assert repo.pages_in_domain("stanford.edu") == [0, 1, 3]

    def test_pages_in_unknown_domain(self):
        assert make_repository().pages_in_domain("nothing.net") == []

    def test_transpose_cached(self):
        repo = make_repository()
        assert repo.transpose() is repo.transpose()
        assert sorted(repo.transpose().edges()) == sorted(
            (t, s) for s, t in repo.graph.edges()
        )

    def test_non_dense_page_ids_rejected(self):
        pages = [Page(page_id=1, url="http://a.com/x")]
        from repro.graph.digraph import Digraph
        import numpy as np

        with pytest.raises(QueryError):
            Repository(
                pages=pages,
                graph=Digraph(np.array([0, 0]), np.array([], dtype=np.int64)),
            )

    def test_page_graph_mismatch_rejected(self):
        from repro.graph.digraph import GraphBuilder

        with pytest.raises(QueryError):
            Repository(pages=[], graph=GraphBuilder(2).build())


class TestCrawlPrefix:
    def test_prefix_drops_external_links(self):
        repo = make_repository()
        prefix = repo.crawl_prefix(2)
        assert prefix.num_pages == 2
        # edge (0,1) survives; (0,2) and (1,3) point outside the prefix
        assert sorted(prefix.graph.edges()) == [(0, 1)]

    def test_full_prefix_is_identity(self):
        repo = make_repository()
        prefix = repo.crawl_prefix(repo.num_pages)
        assert prefix.num_pages == repo.num_pages
        assert sorted(prefix.graph.edges()) == sorted(repo.graph.edges())

    def test_invalid_prefix_size(self):
        with pytest.raises(QueryError):
            make_repository().crawl_prefix(99)

    def test_prefix_is_monotone(self, small_repo):
        smaller = small_repo.crawl_prefix(200)
        larger = small_repo.crawl_prefix(400)
        # Every link of the smaller prefix exists in the larger one.
        small_edges = set(smaller.graph.edges())
        large_edges = set(larger.graph.edges())
        assert small_edges <= large_edges
