"""Tests for the counted I/O devices, especially the paper's seek rule."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.device import CountedFile, PageDevice
from repro.storage.metrics import MetricsRegistry


@pytest.fixture
def datafile(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(bytes(range(256)) * 4)  # 1024 bytes
    return path


class TestCountedFile:
    def test_read_at_returns_exact_range(self, datafile):
        device = CountedFile(datafile)
        assert device.read_at(0, 4) == bytes([0, 1, 2, 3])
        assert device.read_at(256, 2) == bytes([0, 1])

    def test_first_read_is_one_seek(self, datafile):
        device = CountedFile(datafile)
        device.read_at(0, 10)
        assert device.registry.get("disk_seeks") == 1
        assert device.registry.get("bytes_read") == 10

    def test_sequential_reads_do_not_seek(self, datafile):
        # The paper's rule: a read continuing at the previous read's end
        # offset is sequential — this is what rewards the S-Node layout.
        device = CountedFile(datafile)
        device.read_at(100, 50)
        device.read_at(150, 50)
        device.read_at(200, 8)
        assert device.registry.get("disk_seeks") == 1
        assert device.registry.get("bytes_read") == 108

    def test_non_contiguous_read_counts_a_seek(self, datafile):
        device = CountedFile(datafile)
        device.read_at(0, 10)
        device.read_at(500, 10)  # jump forward
        device.read_at(0, 10)  # jump back
        assert device.registry.get("disk_seeks") == 3

    def test_forget_position_forces_next_seek(self, datafile):
        device = CountedFile(datafile)
        device.read_at(0, 10)
        device.forget_position()
        device.read_at(10, 10)  # would have been sequential
        assert device.registry.get("disk_seeks") == 2

    def test_shared_registry_accumulates_across_files(self, tmp_path):
        registry = MetricsRegistry()
        for name in ("a.bin", "b.bin"):
            (tmp_path / name).write_bytes(b"x" * 64)
        first = CountedFile(tmp_path / "a.bin", registry)
        second = CountedFile(tmp_path / "b.bin", registry)
        first.read_at(0, 16)
        second.read_at(0, 16)
        assert registry.get("bytes_read") == 32
        assert registry.get("disk_seeks") == 2

    def test_short_read_raises(self, datafile):
        device = CountedFile(datafile)
        with pytest.raises(StorageError):
            device.read_at(1020, 100)

    def test_negative_range_rejected(self, datafile):
        device = CountedFile(datafile)
        with pytest.raises(StorageError):
            device.read_at(-1, 4)
        with pytest.raises(StorageError):
            device.read_at(0, -4)

    def test_missing_file_raises_on_read(self, tmp_path):
        device = CountedFile(tmp_path / "absent.bin")
        with pytest.raises(StorageError):
            device.read_at(0, 1)

    def test_writes_metered_separately(self, datafile):
        device = CountedFile(datafile)
        device.write_at(0, b"ABCD")
        offset = device.append(b"EFGH")
        assert offset == 1024
        assert device.registry.get("bytes_written") == 8
        assert device.registry.get("bytes_read") == 0
        assert device.read_at(0, 4) == b"ABCD"
        assert device.read_at(1024, 4) == b"EFGH"

    def test_zero_length_read_allowed(self, datafile):
        device = CountedFile(datafile)
        assert device.read_at(0, 0) == b""
        assert device.registry.get("bytes_read") == 0
        # The zero-length read still positioned the head at offset 0.
        device.read_at(0, 4)
        assert device.registry.get("disk_seeks") == 1

    def test_write_at_missing_file_raises(self, tmp_path):
        device = CountedFile(tmp_path / "absent.bin")
        with pytest.raises(StorageError, match="no such file"):
            device.write_at(0, b"data")

    def test_write_on_cached_read_end_invalidates_position(self, datafile):
        # After read_at(0, 4) the head is cached at offset 4; a write
        # touching that offset moves the head, so the next read at 4 must
        # count a seek instead of passing as sequential.
        device = CountedFile(datafile)
        device.read_at(0, 4)
        device.write_at(2, b"xx")
        device.read_at(4, 4)
        assert device.registry.get("disk_seeks") == 2

    def test_write_away_from_read_end_keeps_position(self, datafile):
        device = CountedFile(datafile)
        device.read_at(0, 4)
        device.write_at(100, b"xx")  # nowhere near the cached offset 4
        device.read_at(4, 4)
        assert device.registry.get("disk_seeks") == 1

    def test_close_then_read_reopens(self, datafile):
        device = CountedFile(datafile)
        device.read_at(0, 4)
        device.close()
        assert device.read_at(4, 4) == bytes([4, 5, 6, 7])
        # Closing forgot the position, so the reopened read seeks.
        assert device.registry.get("disk_seeks") == 2


class TestPageDevice:
    def test_page_round_trip(self, tmp_path):
        path = tmp_path / "pages.bin"
        path.write_bytes(b"")
        device = PageDevice(path, page_size=64)
        assert device.num_pages == 0
        number = device.append_page(b"a" * 64)
        assert number == 0
        device.append_page(b"b" * 64)
        assert device.num_pages == 2
        assert device.read_page(1) == b"b" * 64
        device.write_page(0, b"c" * 64)
        assert device.read_page(0) == b"c" * 64

    def test_sequential_page_reads_one_seek(self, tmp_path):
        path = tmp_path / "pages.bin"
        path.write_bytes(b"x" * 64 * 8)
        device = PageDevice(path, page_size=64)
        for page in range(8):
            device.read_page(page)
        assert device.registry.get("disk_seeks") == 1
        device.read_page(0)
        assert device.registry.get("disk_seeks") == 2

    def test_wrong_sized_page_write_rejected(self, tmp_path):
        path = tmp_path / "pages.bin"
        path.write_bytes(b"x" * 64)
        device = PageDevice(path, page_size=64)
        with pytest.raises(StorageError):
            device.write_page(0, b"short")
        with pytest.raises(StorageError):
            device.append_page(b"short")

    def test_bad_page_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PageDevice(tmp_path / "p.bin", page_size=0)

    def test_read_page_past_eof_raises(self, tmp_path):
        path = tmp_path / "pages.bin"
        path.write_bytes(b"x" * 64 * 2)
        device = PageDevice(path, page_size=64)
        with pytest.raises(StorageError, match="short read"):
            device.read_page(2)

    def test_negative_page_number_rejected(self, tmp_path):
        path = tmp_path / "pages.bin"
        path.write_bytes(b"x" * 64)
        device = PageDevice(path, page_size=64)
        with pytest.raises(StorageError, match="out of range"):
            device.read_page(-1)

    def test_sidecar_verifies_page_reads(self, tmp_path):
        from repro.storage import integrity

        path = tmp_path / "pages.bin"
        pages = [bytes([value]) * 64 for value in (1, 2, 3)]
        path.write_bytes(b"".join(pages))
        integrity.sidecar_path(path).write_bytes(
            integrity.encode_page_checksums([integrity.crc32(p) for p in pages])
        )
        device = PageDevice(path, page_size=64)
        assert device.read_page(1) == pages[1]
        # Corrupt page 2 behind the device's back (close first so the
        # buffered read handle cannot serve stale bytes).
        device.close()
        blob = bytearray(path.read_bytes())
        blob[64 * 2 + 10] ^= 0x01
        path.write_bytes(bytes(blob))
        from repro.errors import CorruptionError

        with pytest.raises(CorruptionError, match="page 2 checksum"):
            device.read_page(2)

    def test_writes_keep_sidecar_current_without_close(self, tmp_path):
        from repro.storage import integrity

        path = tmp_path / "pages.bin"
        page = b"a" * 64
        path.write_bytes(page)
        integrity.sidecar_path(path).write_bytes(
            integrity.encode_page_checksums([integrity.crc32(page)])
        )
        writer = PageDevice(path, page_size=64)
        writer.write_page(0, b"b" * 64)
        writer.append_page(b"c" * 64)
        # A second device opened while the writer is still live must see a
        # consistent (file, sidecar) pair.
        reader = PageDevice(path, page_size=64)
        assert reader.read_page(0) == b"b" * 64
        assert reader.read_page(1) == b"c" * 64


class TestProfilerHooks:
    """The access profiler must mirror the device's own seek accounting."""

    def test_io_events_match_seek_counter(self, datafile):
        from repro.obs.profile import AccessTracer, activated

        device = CountedFile(datafile)
        tracer = AccessTracer()
        with activated(tracer):
            device.read_at(0, 10)  # first read: seek
            device.read_at(10, 10)  # sequential
            device.read_at(500, 10)  # jump: seek
            device.forget_position()
            device.read_at(510, 10)  # would have been sequential: seek
        events = [e for e in tracer.io_events() if hasattr(e, "seek")]
        assert [e.seek for e in events] == [True, False, True, True]
        assert sum(e.seek for e in events) == device.registry.get("disk_seeks")
        assert sum(e.length for e in events) == device.registry.get("bytes_read")

    def test_forget_recorded_between_reads(self, datafile):
        from repro.obs.profile import AccessTracer, activated
        from repro.obs.profile.trace import ForgetEvent

        device = CountedFile(datafile)
        tracer = AccessTracer()
        with activated(tracer):
            device.read_at(0, 4)
            device.forget_position()
            device.read_at(4, 4)
        kinds = [type(e).__name__ for e in tracer.io_events()]
        assert kinds == ["IOEvent", "ForgetEvent", "IOEvent"]
        assert any(type(e) is ForgetEvent for e in tracer.io_events())

    def test_page_reads_emit_page_events(self, tmp_path):
        from repro.obs.profile import AccessTracer, activated
        from repro.obs.profile.trace import PageEvent

        path = tmp_path / "pages.bin"
        path.write_bytes(b"x" * 64 * 4)
        device = PageDevice(path, page_size=64)
        tracer = AccessTracer()
        with activated(tracer):
            device.read_page(2)
            device.read_page(2)
        pages = [e.page for e in tracer.io_events() if type(e) is PageEvent]
        assert pages == [2, 2]

    def test_no_events_without_activation(self, datafile):
        from repro.obs.profile import AccessTracer, activated

        device = CountedFile(datafile)
        device.read_at(0, 10)  # inactive: not recorded
        tracer = AccessTracer()
        with activated(tracer):
            pass
        assert tracer.io_events() == []


class TestConcurrentReads:
    def test_parallel_reads_return_correct_bytes(self, datafile):
        import threading

        device = CountedFile(datafile)
        expected = datafile.read_bytes()
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    offset = ((seed * 37 + i * 13) % 128) * 8
                    assert (
                        device.read_at(offset, 8)
                        == expected[offset : offset + 8]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert device.registry.get("bytes_read") == 8 * 200 * 8
        device.close()

    def test_per_session_registry_attribution(self, datafile):
        device = CountedFile(datafile)
        session_a = device.registry.child("a")
        session_b = device.registry.child("b")
        device.read_at(0, 16, registry=session_a)
        device.read_at(512, 16, registry=session_b)
        device.read_at(16, 16)  # base registry
        assert session_a.io_stats()["bytes_read"] == 16
        assert session_b.io_stats()["bytes_read"] == 16
        assert device.registry.get("bytes_read") == 16
        # Aggregated view equals the serial accounting.
        assert device.registry.get_total("bytes_read") == 48
        assert device.registry.get_total("disk_seeks") == 3
        device.close()

    def test_seek_rule_is_shared_across_sessions(self, datafile):
        # The read head is physical: session B continuing at session A's
        # end offset is sequential, whoever pays for it.
        device = CountedFile(datafile)
        session_a = device.registry.child("a")
        session_b = device.registry.child("b")
        device.read_at(0, 32, registry=session_a)
        device.read_at(32, 32, registry=session_b)  # continues A's read
        assert session_a.get("disk_seeks") == 1
        assert session_b.get("disk_seeks") == 0
        device.close()

    def test_reads_allowed_after_close_reopen(self, datafile):
        device = CountedFile(datafile)
        device.read_at(0, 8)
        device.close()
        assert device.read_at(8, 8) == bytes(range(8, 16))
        device.close()
