"""Graph WAL: framing, scan/repair, truncation, crash-safety sweep.

The durability contract under test (DESIGN.md, "Write path & compaction"):

* ``append`` returning IS the acknowledgement — after any crash, a
  repaired log replays exactly the acknowledged batches: **zero acked
  loss, zero phantom records**, at every possible crash point;
* a torn tail (crash mid-append) is detected by ``scan`` and removed by
  ``repair_tail`` without touching any intact frame;
* prefix truncation (compaction absorbing the log) is atomic — a crash
  during it leaves the original log intact plus a staging leftover that
  ``fsck`` reports.
"""

from __future__ import annotations

import shutil

import pytest

from repro.errors import StorageError
from repro.storage import faults
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.fsck import fsck
from repro.storage.wal import GraphWal, WalRecord, decode_record, encode_record


BATCHES = [
    ("add", [(0, 5), (1, 7), (1, 9)]),
    ("remove", [(2, 3)]),
    ("add", [(4, 0), (4, 1), (4, 2), (7, 7)]),
    ("remove", [(1, 9), (0, 5)]),
    ("add", [(123456, 9876543)]),
]


class TestRecordCodec:
    def test_roundtrip_every_batch(self):
        for op, edges in BATCHES:
            record = decode_record(encode_record(op, edges))
            assert record == WalRecord(op=op, edges=tuple(sorted(set(edges))))

    def test_rejects_bad_input(self):
        with pytest.raises(StorageError):
            encode_record("add", [])
        with pytest.raises(StorageError):
            encode_record("add", [(-1, 2)])
        with pytest.raises(StorageError):
            encode_record("upsert", [(0, 1)])

    def test_rejects_bad_opcode_payload(self):
        payload = bytearray(encode_record("add", [(0, 1)]))
        payload[0] = 0x7F  # no such opcode
        with pytest.raises(StorageError):
            decode_record(bytes(payload))


class TestAppendScan:
    def test_append_then_scan_replays_everything(self, tmp_path):
        wal = GraphWal(tmp_path / "graph.wal")
        assert wal.size_bytes() == 0
        for op, edges in BATCHES:
            wal.append(op, edges)
        scan = wal.scan()
        assert not scan.torn
        assert scan.good_bytes == wal.size_bytes()
        assert [(r.op, r.edges) for r in scan.records] == [
            (op, tuple(sorted(set(edges)))) for op, edges in BATCHES
        ]

    def test_torn_tail_detected_and_repaired(self, tmp_path):
        wal = GraphWal(tmp_path / "graph.wal")
        for op, edges in BATCHES[:2]:
            wal.append(op, edges)
        good = wal.path.read_bytes()
        wal.path.write_bytes(good + b"\x55torn-frame-residue")
        scan = wal.scan()
        assert scan.torn and scan.torn_bytes > 0
        assert len(scan.records) == 2  # intact prefix still replays
        removed = wal.repair_tail()
        assert removed == len(b"\x55torn-frame-residue")
        assert wal.path.read_bytes() == good
        assert wal.repair_tail() == 0  # idempotent on a clean log

    def test_truncate_prefix_keeps_suffix_replayable(self, tmp_path):
        wal = GraphWal(tmp_path / "graph.wal")
        offsets = [wal.append(op, edges) for op, edges in BATCHES]
        absorbed = offsets[2]  # byte offset after the third record
        wal.truncate_prefix(absorbed)
        scan = wal.scan()
        assert not scan.torn
        assert [(r.op, r.edges) for r in scan.records] == [
            (op, tuple(sorted(set(edges)))) for op, edges in BATCHES[3:]
        ]

    def test_carry_suffix_to_moves_unabsorbed_records(self, tmp_path):
        old = GraphWal(tmp_path / "old" / "graph.wal")
        old.path.parent.mkdir()
        offsets = [old.append(op, edges) for op, edges in BATCHES]
        new = GraphWal(tmp_path / "new" / "graph.wal")
        new.path.parent.mkdir()
        carried = old.carry_suffix_to(new, offsets[1])
        assert carried == offsets[-1] - offsets[1]
        assert old.size_bytes() == 0  # superseded log emptied
        scan = new.scan()
        assert [(r.op, r.edges) for r in scan.records] == [
            (op, tuple(sorted(set(edges)))) for op, edges in BATCHES[2:]
        ]


class TestCrashSweep:
    def test_every_write_op_crash_loses_no_acked_write(self, tmp_path):
        """Zero acked-write loss, zero phantom replay, at every crash point.

        Each append is one guarded write op; crashing at op ``k`` (with a
        seeded torn prefix actually hitting the file) must leave a log
        that — after tail repair — replays exactly the ``k`` acknowledged
        batches, never a record that was not acked and never one fewer.
        """
        # Count the write ops one full run takes.
        with faults.activated(FaultPlan(seed=0)) as plan:
            wal = GraphWal(tmp_path / "count" / "graph.wal")
            wal.path.parent.mkdir()
            for op, edges in BATCHES:
                wal.append(op, edges)
        total_ops = plan.write_ops
        assert total_ops == len(BATCHES)

        for index in range(total_ops):
            root = tmp_path / f"crash_{index}"
            root.mkdir()
            wal = GraphWal(root / "graph.wal")
            acked: list[tuple[str, list]] = []
            plan = FaultPlan(
                seed=200 + index, crash_at_write=index, torn_writes=True
            )
            with faults.activated(plan):
                with pytest.raises(SimulatedCrash):
                    for op, edges in BATCHES:
                        wal.append(op, edges)
                        acked.append((op, edges))
            assert len(acked) == index
            wal.repair_tail()
            scan = wal.scan()
            assert not scan.torn
            assert [(r.op, r.edges) for r in scan.records] == [
                (op, tuple(sorted(set(edges)))) for op, edges in acked
            ], f"crash at write op {index} broke replay"

    def test_crash_during_truncation_preserves_original_log(self, tmp_path):
        wal = GraphWal(tmp_path / "graph.wal")
        for op, edges in BATCHES:
            wal.append(op, edges)
        before = wal.path.read_bytes()
        plan = FaultPlan(seed=7, crash_at_write=0, torn_writes=True)
        with faults.activated(plan):
            with pytest.raises(SimulatedCrash):
                wal.truncate_prefix(10)
        # The staging write crashed before the atomic replace: the main
        # log is untouched and fully replayable.
        assert wal.path.read_bytes() == before
        assert len(wal.scan().records) == len(BATCHES)


@pytest.fixture()
def build_with_wal(small_build, tmp_path):
    """A private copy of the committed build (safe to grow a WAL beside)."""
    root = tmp_path / "snode"
    shutil.copytree(small_build.root, root)
    return root


class TestFsckWalPass:
    def test_intact_wal_keeps_build_valid(self, build_with_wal):
        wal = GraphWal.for_build(build_with_wal)
        wal.append("add", [(0, 1)])
        wal.append("remove", [(2, 3)])
        for quick in (False, True):
            report = fsck(build_with_wal, quick=quick)
            assert report.ok, report.render()
        assert fsck(build_with_wal).regions_checked >= 2

    def test_torn_tail_is_a_finding_and_repairable(self, build_with_wal):
        wal = GraphWal.for_build(build_with_wal)
        wal.append("add", [(0, 1)])
        good = wal.path.read_bytes()
        wal.path.write_bytes(good + b"\x99garbage")
        # Detected even in quick mode (the swap-validation path).
        report = fsck(build_with_wal, quick=True)
        assert not report.ok
        assert any("torn tail" in f.problem for f in report.findings)
        repaired = fsck(build_with_wal, repair=True)
        assert repaired.repaired
        assert wal.path.read_bytes() == good
        assert fsck(build_with_wal).ok

    def test_staging_leftover_is_reported_and_removed(self, build_with_wal):
        wal = GraphWal.for_build(build_with_wal)
        wal.append("add", [(0, 1)])
        wal.staging_path.write_bytes(b"interrupted truncation residue")
        report = fsck(build_with_wal)
        assert not report.ok
        assert any("staging" in f.problem for f in report.findings)
        fsck(build_with_wal, repair=True)
        assert not wal.staging_path.exists()
        assert fsck(build_with_wal).ok
