"""Tests for the shared buffer pool: pinning, typed loads, resize."""

from __future__ import annotations

import pytest

from repro.storage.bufferpool import BufferPool
from repro.storage.metrics import MetricsRegistry


class TestCacheProtocol:
    def test_hit_miss_counting(self):
        pool = BufferPool(100)
        assert pool.get("k") is None
        pool.put("k", b"data", 4)
        assert pool.get("k") == b"data"
        stats = pool.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_evictions_counted_and_callback_fired(self):
        seen = []
        pool = BufferPool(10, on_evict=lambda k, v: seen.append(k))
        pool.put("a", b"x", 10)
        pool.put("b", b"y", 10)
        assert pool.registry.get("buffer_evictions") == 1
        assert seen == ["a"]

    def test_get_or_load_loads_once(self):
        pool = BufferPool(100)
        calls = []

        def loader():
            calls.append(1)
            return b"payload"

        assert pool.get_or_load("k", loader) == b"payload"
        assert pool.get_or_load("k", loader) == b"payload"
        assert len(calls) == 1
        assert pool.registry.get("loads") == 1

    def test_get_or_load_kinds(self):
        pool = BufferPool(1000)
        pool.get_or_load("p1", lambda: b"x" * 8, kind="heap_page")
        pool.get_or_load("p2", lambda: b"x" * 8, kind="heap_page")
        pool.get_or_load("i1", lambda: b"x" * 8, kind="index_page")
        assert pool.registry.get("loads") == 3
        assert pool.registry.get("heap_page_loads") == 2
        assert pool.registry.get("index_page_loads") == 1

    def test_get_or_load_cost_forms(self):
        pool = BufferPool(1000)
        pool.get_or_load("default", lambda: b"abcd")  # len(value)
        assert pool.used_bytes == 4
        pool.get_or_load("explicit", lambda: [1, 2], cost=10)
        assert pool.used_bytes == 14
        pool.get_or_load("callable", lambda: [1, 2, 3], cost=lambda v: 8 * len(v))
        assert pool.used_bytes == 38


class TestPinning:
    def test_pinned_entries_survive_eviction_pressure(self):
        pool = BufferPool(10)
        pool.pin("root", b"meta", 100)
        for i in range(20):
            pool.put(i, b"x", 10)
        assert pool.get("root") == b"meta"
        assert pool.pinned_bytes == 100
        assert pool.used_bytes <= 10

    def test_pins_outside_lru_budget(self):
        # A pin larger than the whole budget is fine: the paper keeps the
        # supernode graph resident regardless of the navigation buffer.
        pool = BufferPool(10)
        pool.pin("root", b"meta", 1_000_000)
        pool.put("a", b"x", 10)
        assert pool.get("a") == b"x"
        assert pool.stats()["pinned_entries"] == 1

    def test_pin_survives_clear_and_resize(self):
        pool = BufferPool(100)
        pool.pin("root", b"meta", 8)
        pool.put("a", b"x", 10)
        pool.clear()
        assert pool.get("root") == b"meta"
        assert pool.get("a") is None
        pool.set_buffer_bytes(50)
        assert pool.get("root") == b"meta"

    def test_unpin_drops_entry(self):
        pool = BufferPool(100)
        pool.pin("root", b"meta", 8)
        pool.unpin("root")
        assert pool.get("root") is None
        assert pool.pinned_bytes == 0

    def test_put_to_pinned_key_updates_pin(self):
        pool = BufferPool(100)
        pool.pin("root", b"old", 8)
        pool.put("root", b"new", 16)
        assert pool.get("root") == b"new"
        assert pool.pinned_bytes == 16
        assert pool.used_bytes == 0


class TestKindCounters:
    def test_per_kind_hits_and_misses(self):
        pool = BufferPool(1000)
        pool.get("k", kind="intranode")  # miss
        pool.put("k", b"x", 8, kind="intranode")
        pool.get("k", kind="intranode")  # hit
        pool.get("s", kind="superedge")  # miss
        assert pool.registry.get("buffer_hits_intranode") == 1
        assert pool.registry.get("buffer_misses_intranode") == 1
        assert pool.registry.get("buffer_misses_superedge") == 1
        assert pool.registry.get("buffer_hits_superedge") == 0
        # The untyped totals still include everything.
        assert pool.registry.get("buffer_hits") == 1
        assert pool.registry.get("buffer_misses") == 2

    def test_get_or_load_attributes_kind(self):
        pool = BufferPool(1000)
        pool.get_or_load("p", lambda: b"x" * 8, kind="heap_page")  # miss+load
        pool.get_or_load("p", lambda: b"x" * 8, kind="heap_page")  # hit
        assert pool.registry.get("buffer_misses_heap_page") == 1
        assert pool.registry.get("buffer_hits_heap_page") == 1

    def test_untyped_gets_count_totals_only(self):
        pool = BufferPool(1000)
        pool.get("k")
        assert pool.registry.get("buffer_misses") == 1
        assert pool.registry.get("buffer_misses_intranode") == 0

    def test_pinned_hits_counted_separately(self):
        pool = BufferPool(1000)
        pool.pin("root", b"meta", 8)
        pool.get("root", kind="mapping")
        pool.get("root")
        stats = pool.stats()
        assert stats["hits"] == 2
        assert stats["pinned_hits"] == 2
        assert pool.registry.get("buffer_hits_mapping") == 1
        # Unpinned hit ratio excludes capacity-independent pinned traffic.
        assert stats["hits"] - stats["pinned_hits"] == 0


class TestProfilerHooks:
    def test_accesses_admits_and_drops_recorded(self):
        from repro.obs.profile import AccessTracer, activated
        from repro.obs.profile.trace import AdmitEvent, BufferEvent, DropEvent

        pool = BufferPool(1000)
        tracer = AccessTracer()
        with activated(tracer):
            pool.get("k", kind="intranode")  # miss
            pool.put("k", b"x", 8, kind="intranode")  # admit
            pool.get("k", kind="intranode")  # hit
            pool.invalidate("k")  # drop (key was cached)
            pool.invalidate("absent")  # no drop: nothing was cached
        events = tracer.buffer_events()
        kinds = [type(e) for e in events]
        assert kinds == [BufferEvent, AdmitEvent, BufferEvent, DropEvent]
        assert [e.hit for e in events if type(e) is BufferEvent] == [False, True]
        assert events[1].cost == 8
        assert events[3].key == "k"

    def test_pinned_access_flagged(self):
        from repro.obs.profile import AccessTracer, activated

        pool = BufferPool(1000)
        pool.pin("root", b"meta", 8)
        tracer = AccessTracer()
        with activated(tracer):
            pool.get("root")
        (event,) = tracer.buffer_events()
        assert event.pinned is True
        assert event.hit is True

    def test_clear_and_resize_record_whole_pool_drops(self):
        from repro.obs.profile import AccessTracer, activated
        from repro.obs.profile.trace import DropEvent

        pool = BufferPool(1000)
        pool.put("a", b"x", 8)
        tracer = AccessTracer()
        with activated(tracer):
            pool.clear()
            pool.set_buffer_bytes(500)
        drops = [e for e in tracer.buffer_events() if type(e) is DropEvent]
        assert len(drops) == 2
        assert all(e.key is None for e in drops)


class TestMaintenance:
    def test_clear_recorded_counts_evictions(self):
        pool = BufferPool(100)
        pool.put("a", b"x", 10)
        pool.put("b", b"y", 10)
        pool.clear(record=True)
        assert pool.registry.get("buffer_evictions") == 2

    def test_clear_silent_counts_nothing(self):
        pool = BufferPool(100)
        pool.put("a", b"x", 10)
        pool.clear(record=False)
        assert pool.registry.get("buffer_evictions") == 0
        assert pool.get("a") is None

    def test_set_buffer_bytes_is_silent_and_rebounds(self):
        pool = BufferPool(100)
        pool.put("a", b"x", 10)
        pool.set_buffer_bytes(25)
        assert pool.registry.get("buffer_evictions") == 0
        assert pool.capacity_bytes == 25
        assert pool.get("a") is None  # cache dropped by the resize
        pool.put("b", b"x", 10)
        pool.put("c", b"x", 10)
        pool.put("d", b"x", 10)  # 30 > 25: evicts "b"
        assert pool.get("b") is None

    def test_invalidate_is_silent(self):
        pool = BufferPool(100)
        pool.put("a", b"x", 10)
        pool.invalidate("a")
        assert pool.registry.get("buffer_evictions") == 0
        assert pool.get("a") is None

    def test_shared_registry(self):
        registry = MetricsRegistry()
        first = BufferPool(100, registry=registry)
        second = BufferPool(100, registry=registry)
        first.get("miss")
        second.get("miss")
        assert registry.get("buffer_misses") == 2

    def test_stats_shape(self):
        pool = BufferPool(64)
        pool.pin("root", b"m", 4)
        pool.put("a", b"x", 10)
        stats = pool.stats()
        assert stats == {
            "hits": 0,
            "pinned_hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 1,
            "used_bytes": 10,
            "capacity_bytes": 64,
            "pinned_entries": 1,
            "pinned_bytes": 4,
        }


class TestStriping:
    def test_striped_pool_partitions_budget(self):
        pool = BufferPool(100, stripes=4)
        assert pool.stripes == 4
        assert pool.capacity_bytes == 100

    def test_stripe_count_validation(self):
        with pytest.raises(ValueError):
            BufferPool(100, stripes=0)

    def test_single_stripe_is_exact_lru(self):
        # stripes=1 must reproduce the serial single-LRU eviction order
        # (the committed benchmark baselines depend on it).
        pool = BufferPool(30, stripes=1)
        pool.put("a", b"x", 10)
        pool.put("b", b"x", 10)
        pool.put("c", b"x", 10)
        pool.get("a")  # refresh "a": "b" is now LRU
        pool.put("d", b"x", 10)
        assert pool.get("b") is None
        assert pool.get("a") == b"x"

    def test_striped_capacity_never_exceeded(self):
        pool = BufferPool(100, stripes=8)
        for i in range(200):
            pool.put(("k", i), b"x", 7)
        assert pool.used_bytes <= 100
        pool.check_invariants()

    def test_resize_below_pinned_floor_raises_typed(self):
        from repro.errors import BufferCapacityError, StorageError

        pool = BufferPool(1000, stripes=2)
        pool.pin("root", b"meta", 400)
        pool.put("a", b"x", 10)
        with pytest.raises(BufferCapacityError) as excinfo:
            pool.set_buffer_bytes(399)
        assert isinstance(excinfo.value, StorageError)
        # Failed resize leaves the pool untouched: capacity and cached
        # entries unchanged, invariants intact.
        assert pool.capacity_bytes == 1000
        assert pool.get("a") == b"x"
        pool.check_invariants()

    def test_resize_at_pinned_floor_allowed(self):
        pool = BufferPool(1000)
        pool.pin("root", b"meta", 400)
        pool.set_buffer_bytes(400)
        assert pool.capacity_bytes == 400
        assert pool.get("root") == b"meta"

    def test_check_invariants_catches_accounting_drift(self):
        from repro.errors import StorageError

        pool = BufferPool(100, stripes=4)
        pool.pin("root", b"meta", 10)
        pool.put("a", b"x", 10)
        pool.check_invariants()  # healthy pool passes
        pool._pinned_bytes += 5  # simulate drifted accounting
        with pytest.raises(StorageError):
            pool.check_invariants()


class TestConcurrency:
    def test_concurrent_get_or_load_stays_within_budget(self):
        import threading

        pool = BufferPool(500, stripes=4)
        pool.pin("root", b"meta", 64)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(300):
                    key = ("graph", (seed * 31 + i) % 60)
                    value = pool.get_or_load(key, lambda: b"v" * 25)
                    assert value == b"v" * 25
                    assert pool.get("root") == b"meta"  # pins never evicted
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert pool.used_bytes <= 500
        assert pool.pinned_bytes == 64
        pool.check_invariants()

    def test_session_registries_sum_to_shared_totals(self):
        pool = BufferPool(10_000)
        sessions = [pool.registry.child(f"client-{i}") for i in range(3)]
        for index, session in enumerate(sessions):
            for i in range(5):
                pool.get_or_load(
                    ("k", index, i), lambda: b"x" * 8, registry=session
                )
            pool.get(("k", index, 0), registry=session)  # one hit each
        # The base registry saw nothing directly ...
        assert pool.registry.get("loads") == 0
        # ... yet the aggregated view equals the serial accounting.
        assert pool.registry.get_total("loads") == 15
        assert pool.registry.get_total("buffer_hits") == 3
        assert pool.registry.get_total("buffer_misses") == 15
        for session in sessions:
            pool.registry.merge(session)
        assert pool.registry.get("loads") == 15
        assert pool.registry.children() == []

    def test_concurrent_resize_and_reads(self):
        import threading

        pool = BufferPool(400, stripes=2)
        stop = threading.Event()
        errors = []

        def reader() -> None:
            try:
                i = 0
                while not stop.is_set():
                    pool.get_or_load(("r", i % 40), lambda: b"x" * 20)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for capacity in (200, 800, 400, 600):
            pool.set_buffer_bytes(capacity)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
        assert pool.capacity_bytes == 600
        pool.check_invariants()
