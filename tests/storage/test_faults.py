"""Unit tests for the fault-injection layer and the atomic build protocol."""

from __future__ import annotations

import json

import pytest

from repro.errors import CorruptionError, StorageError
from repro.storage import atomic, faults, integrity
from repro.storage.atomic import BuildTransaction, classify_build, require_build
from repro.storage.device import CountedFile, PageDevice
from repro.storage.faults import (
    READ_RETRY_LIMIT,
    FaultPlan,
    SimulatedCrash,
    TransientIOError,
)


@pytest.fixture
def datafile(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(bytes(range(256)) * 4)
    return path


@pytest.fixture(autouse=True)
def _no_sleep(monkeypatch):
    """Retry backoff without wall-clock delay."""
    monkeypatch.setattr("repro.storage.device.time.sleep", lambda _s: None)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="bit_flip_rate"):
            FaultPlan(bit_flip_rate=1.5)
        with pytest.raises(ValueError, match="eio_rate"):
            FaultPlan(eio_rate=-0.1)

    def test_same_seed_same_faults(self):
        def run(plan: FaultPlan) -> list[bytes]:
            return [plan.on_read("f", 0, bytes(range(32))) for _ in range(16)]

        first = run(FaultPlan(seed=7, bit_flip_rate=0.5, short_read_rate=0.3))
        second = run(FaultPlan(seed=7, bit_flip_rate=0.5, short_read_rate=0.3))
        assert first == second
        assert first != [bytes(range(32))] * 16  # faults actually fired

    def test_inert_plan_counts_write_ops_without_faulting(self, tmp_path):
        with faults.activated(FaultPlan(seed=0)) as plan:
            atomic.write_file(tmp_path / "a.bin", b"hello")
            atomic.write_file(tmp_path / "b.bin", b"world")
        assert plan.write_ops == 2
        assert plan.injected == {}
        assert (tmp_path / "a.bin").read_bytes() == b"hello"

    def test_activation_is_scoped(self):
        plan = FaultPlan(seed=0)
        assert faults.active_plan() is None
        with faults.activated(plan):
            assert faults.active_plan() is plan
        assert faults.active_plan() is None


class TestReadFaults:
    def test_persistent_eio_exhausts_retries(self, datafile):
        device = CountedFile(datafile)
        with faults.activated(FaultPlan(seed=0, eio_rate=1.0)) as plan:
            with pytest.raises(StorageError, match="still failing"):
                device.read_at(0, 16)
        assert device.registry.get("io_retries") == READ_RETRY_LIMIT
        assert device.registry.get("fault_eio") == READ_RETRY_LIMIT + 1
        assert plan.injected["eio"] == READ_RETRY_LIMIT + 1

    def test_transient_eio_absorbed_by_retry(self, datafile):
        # seed=1: the first uniform draw is < 0.5 (EIO), the next is not,
        # so the retry succeeds — the fault is genuinely transient.
        device = CountedFile(datafile)
        with faults.activated(FaultPlan(seed=1, eio_rate=0.5)):
            data = device.read_at(0, 8)
        assert data == bytes(range(8))
        assert device.registry.get("io_retries") == 1
        assert device.registry.get("fault_eio") == 1

    def test_transient_error_is_retryable_eio(self):
        error = TransientIOError("some/file")
        assert isinstance(error, OSError)
        import errno

        assert error.errno == errno.EIO

    def test_persistent_short_reads_surface_as_storage_error(self, datafile):
        device = CountedFile(datafile)
        with faults.activated(FaultPlan(seed=3, short_read_rate=1.0)):
            with pytest.raises(StorageError, match="short read"):
                device.read_at(0, 64)
        assert device.registry.get("io_retries") == READ_RETRY_LIMIT
        assert device.registry.get("fault_short_reads") == READ_RETRY_LIMIT + 1

    def test_genuine_eof_short_read_not_retried(self, datafile):
        device = CountedFile(datafile)
        with pytest.raises(StorageError, match="short read"):
            device.read_at(1020, 100)
        assert device.registry.get("io_retries") == 0

    def test_bit_flip_caught_by_page_checksum(self, tmp_path):
        path = tmp_path / "pages.bin"
        pages = [bytes([value]) * 64 for value in (1, 2, 3)]
        path.write_bytes(b"".join(pages))
        integrity.sidecar_path(path).write_bytes(
            integrity.encode_page_checksums([integrity.crc32(p) for p in pages])
        )
        device = PageDevice(path, page_size=64)
        with faults.activated(FaultPlan(seed=5, bit_flip_rate=1.0)):
            with pytest.raises(CorruptionError, match="checksum mismatch"):
                device.read_page(1)
        assert device.registry.get("fault_bit_flips") >= 1

    def test_faults_recorded_in_event_log(self, datafile):
        device = CountedFile(datafile)
        with faults.activated(FaultPlan(seed=1, eio_rate=0.5)):
            device.read_at(0, 8)
        assert any(kind == "fault" for kind, _ in device.registry.events.to_list())


class TestSlowReads:
    def test_slow_read_stalls_intact_data(self, datafile, monkeypatch):
        stalls: list[float] = []
        monkeypatch.setattr(
            "repro.storage.faults.time.sleep", stalls.append
        )
        device = CountedFile(datafile)
        plan = FaultPlan(seed=2, slow_read_rate=1.0, slow_read_seconds=0.01)
        with faults.activated(plan):
            data = device.read_at(0, 8)
        # Latency injection only: the payload is untouched.
        assert data == bytes(range(8))
        assert stalls == [0.01]
        assert plan.injected["slow_reads"] == 1
        assert device.registry.get("fault_slow_reads") == 1

    def test_zero_rate_preserves_legacy_fault_placement(self):
        # The slow-read draw is gated on its rate, so a plan without one
        # keeps the historical RNG stream — fault placement of existing
        # seeded scenarios must not move.
        def run(plan: FaultPlan) -> list[bytes]:
            return [plan.on_read("f", 0, bytes(range(32))) for _ in range(16)]

        legacy = run(FaultPlan(seed=7, bit_flip_rate=0.5, short_read_rate=0.3))
        gated = run(
            FaultPlan(
                seed=7,
                bit_flip_rate=0.5,
                short_read_rate=0.3,
                slow_read_rate=0.0,
                slow_read_seconds=0.5,
            )
        )
        assert gated == legacy

    def test_slow_read_params_validated(self):
        with pytest.raises(ValueError, match="slow_read_rate"):
            FaultPlan(slow_read_rate=1.5)
        with pytest.raises(ValueError, match="slow_read_seconds"):
            FaultPlan(slow_read_seconds=-0.1)


class TestWriteFaults:
    def test_crash_leaves_torn_prefix(self, tmp_path):
        path = tmp_path / "out.bin"
        data = bytes(range(200))
        plan = FaultPlan(seed=11, crash_at_write=0, torn_writes=True)
        with faults.activated(plan):
            with pytest.raises(SimulatedCrash):
                atomic.write_file(path, data)
        assert plan.injected.get("torn_writes") == 1
        on_disk = path.read_bytes() if path.exists() else b""
        assert len(on_disk) < len(data)
        assert on_disk == data[: len(on_disk)]

    def test_crash_without_torn_writes_leaves_nothing(self, tmp_path):
        path = tmp_path / "out.bin"
        with faults.activated(FaultPlan(seed=0, crash_at_write=0)):
            with pytest.raises(SimulatedCrash):
                atomic.write_file(path, b"payload")
        assert not path.exists()

    def test_crash_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(SimulatedCrash, ReproError)


class TestBuildTransaction:
    def test_commit_publishes_manifest_and_digest(self, tmp_path):
        root = tmp_path / "build"
        with BuildTransaction(root) as transaction:
            transaction.write_file("payload.bin", b"abc")
            manifest = transaction.write_manifest({"scheme": "test"})
            transaction.commit()
        assert classify_build(root) == "valid"
        on_disk = json.loads((root / atomic.MANIFEST_NAME).read_text())
        assert on_disk == manifest
        entry = on_disk["files"]["payload.bin"]
        assert entry == {"bytes": 3, "crc32": integrity.crc32(b"abc")}
        assert on_disk["digest"] == integrity.build_digest(on_disk["files"])

    def test_registered_files_checksummed_from_disk(self, tmp_path):
        root = tmp_path / "build"
        with BuildTransaction(root) as transaction:
            transaction.path("device.bin").write_bytes(b"written by a device")
            transaction.register("device.bin")
            manifest = transaction.write_manifest({})
            transaction.commit()
        assert manifest["files"]["device.bin"]["bytes"] == 19
        assert manifest["files"]["device.bin"]["crc32"] == integrity.crc32(
            b"written by a device"
        )

    def test_exit_without_commit_raises(self, tmp_path):
        with pytest.raises(StorageError, match="without commit"):
            with BuildTransaction(tmp_path / "build") as transaction:
                transaction.write_file("a.bin", b"a")

    def test_commit_before_manifest_rejected(self, tmp_path):
        transaction = BuildTransaction(tmp_path / "build")
        with pytest.raises(StorageError, match="manifest"):
            transaction.commit()

    def test_failed_build_leaves_partial_marker(self, tmp_path):
        root = tmp_path / "build"
        with pytest.raises(RuntimeError):
            with BuildTransaction(root) as transaction:
                transaction.write_file("a.bin", b"a")
                raise RuntimeError("builder died")
        assert classify_build(root) == "partial"
        with pytest.raises(StorageError, match="partial"):
            require_build(root)

    def test_new_transaction_clears_stale_tmp(self, tmp_path):
        root = tmp_path / "build"
        stale = atomic.tmp_root(root)
        stale.mkdir()
        (stale / "junk.bin").write_bytes(b"junk")
        with BuildTransaction(root) as transaction:
            transaction.write_manifest({})
            transaction.commit()
        assert classify_build(root) == "valid"
        assert not stale.exists()

    def test_missing_state(self, tmp_path):
        assert classify_build(tmp_path / "nowhere") == "missing"
        with pytest.raises(StorageError, match="no thing under"):
            require_build(tmp_path / "nowhere", "thing")
