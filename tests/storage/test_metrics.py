"""Tests for the metrics registry and its bounded event log."""

from __future__ import annotations

import pytest

from repro.storage.metrics import EventLog, MetricsRegistry


class TestEventLog:
    def test_append_and_iterate(self):
        log = EventLog(capacity=10)
        log.append("load", (1,))
        log.append("unload", (2,))
        assert list(log) == [("load", (1,)), ("unload", (2,))]
        assert len(log) == 2
        assert log.dropped == 0

    def test_ring_buffer_bounds_memory(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.append("load", (i,))
        assert len(log) == 3
        assert log.to_list() == [("load", (7,)), ("load", (8,)), ("load", (9,))]
        assert log.dropped == 7

    def test_clear_resets_dropped(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.append("e", (i,))
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_compares_to_plain_list(self):
        log = EventLog()
        assert log == []
        log.append("load", (1,))
        assert log == [("load", (1,))]
        assert log != [("load", (2,))]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        assert registry.get("bytes_read") == 0
        registry.inc("bytes_read", 100)
        registry.inc("bytes_read", 20)
        registry.inc("disk_seeks")
        assert registry.get("bytes_read") == 120
        assert registry.get("disk_seeks") == 1
        assert registry.io_stats() == {"bytes_read": 120, "disk_seeks": 1}

    def test_timers(self):
        registry = MetricsRegistry()
        registry.add_time("navigation", 0.5)
        registry.add_time("navigation", 0.25)
        assert registry.get_time("navigation") == pytest.approx(0.75)
        with registry.timer("navigation"):
            pass
        assert registry.get_time("navigation") >= 0.75

    def test_distinct_tallies(self):
        registry = MetricsRegistry()
        assert registry.mark("intranode", (3,)) is True
        assert registry.mark("intranode", (3,)) is False
        assert registry.mark("intranode", (4,)) is True
        assert registry.distinct("intranode") == 2
        assert registry.distinct_keys("intranode") == {(3,), (4,)}
        assert registry.distinct("never-marked") == 0

    def test_distinct_tally_is_flat_despite_event_volume(self):
        # The section-4.3 analysis reads tallies, not the ring buffer, so
        # repeated loads of the same graphs cost no memory growth.
        registry = MetricsRegistry(event_capacity=8)
        for _ in range(100):
            for graph in range(5):
                registry.mark("intranode", (graph,))
                registry.record("load-intra", (graph,))
        assert registry.distinct("intranode") == 5
        assert len(registry.events) == 8
        assert registry.events.dropped == 100 * 5 - 8

    def test_snapshot_and_diff(self):
        registry = MetricsRegistry()
        registry.inc("bytes_read", 10)
        before = registry.snapshot()
        registry.inc("bytes_read", 30)
        registry.inc("disk_seeks")
        registry.mark("intranode", (1,))
        after = registry.snapshot()
        delta = MetricsRegistry.diff(before, after)
        assert delta["bytes_read"] == 30
        assert delta["disk_seeks"] == 1
        assert delta["distinct_intranode"] == 1

    def test_snapshot_namespaces_timers(self):
        # A counter and a timer sharing a name must not collide in the
        # snapshot: timers are exported under ``time_<name>``.
        registry = MetricsRegistry()
        registry.inc("load", 7)
        registry.add_time("load", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["load"] == 7
        assert snapshot["time_load"] == 0.25

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("bytes_read", 10)
        registry.add_time("t", 1.0)
        registry.mark("intranode", (1,))
        registry.record("load", (1,))
        registry.reset()
        assert registry.io_stats() == {}
        assert registry.get_time("t") == 0.0
        assert registry.distinct("intranode") == 0
        assert len(registry.events) == 0


class TestSessions:
    def test_child_starts_empty_and_is_tracked(self):
        parent = MetricsRegistry()
        parent.inc("bytes_read", 10)
        child = parent.child("client-0")
        assert child.label == "client-0"
        assert child.get("bytes_read") == 0
        assert parent.children() == [child]

    def test_totals_aggregate_live_children(self):
        parent = MetricsRegistry()
        parent.inc("bytes_read", 10)
        a = parent.child("a")
        b = parent.child("b")
        a.inc("bytes_read", 5)
        b.inc("bytes_read", 7)
        assert parent.get("bytes_read") == 10  # own view unchanged
        assert parent.get_total("bytes_read") == 22

    def test_distinct_total_unions_keys(self):
        parent = MetricsRegistry()
        parent.mark("intranode", (1,))
        child = parent.child()
        child.mark("intranode", (1,))  # overlap must not double-count
        child.mark("intranode", (2,))
        assert parent.distinct_total("intranode") == 2

    def test_merge_detaches_and_conserves(self):
        parent = MetricsRegistry()
        child = parent.child("c")
        child.inc("disk_seeks", 3)
        child.add_time("navigation", 0.5)
        child.mark("intranode", (9,))
        child.record("load-intra", (9,))
        total_before = parent.get_total("disk_seeks")
        parent.merge(child)
        assert parent.children() == []
        assert parent.get("disk_seeks") == 3 == total_before
        assert parent.get_time("navigation") == 0.5
        assert parent.distinct("intranode") == 1
        assert ("load-intra", (9,)) in parent.events.to_list()

    def test_merge_self_is_noop(self):
        registry = MetricsRegistry()
        registry.inc("x", 1)
        registry.merge(registry)
        assert registry.get("x") == 1

    def test_merged_snapshot_includes_grandchildren(self):
        parent = MetricsRegistry()
        child = parent.child("c")
        grandchild = child.child("g")
        parent.inc("bytes_read", 1)
        child.inc("bytes_read", 2)
        grandchild.inc("bytes_read", 4)
        grandchild.mark("intranode", (1,))
        child.mark("intranode", (1,))  # same key: union, not sum
        snapshot = parent.merged_snapshot()
        assert snapshot["bytes_read"] == 7
        assert snapshot["distinct_intranode"] == 1

    def test_reset_cascades_to_live_children(self):
        parent = MetricsRegistry()
        child = parent.child()
        child.inc("bytes_read", 5)
        parent.reset()
        assert parent.get_total("bytes_read") == 0
        assert parent.children() == [child]  # still attached, just zeroed

    def test_concurrent_children_merge_to_serial_totals(self):
        import threading

        parent = MetricsRegistry()
        children = [parent.child(f"t{i}") for i in range(4)]

        def worker(child: MetricsRegistry) -> None:
            for _ in range(1000):
                child.inc("bytes_read", 2)
                child.inc("disk_seeks")

        threads = [
            threading.Thread(target=worker, args=(child,)) for child in children
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert parent.get_total("bytes_read") == 4 * 1000 * 2
        for child in children:
            parent.merge(child)
        assert parent.get("bytes_read") == 8000
        assert parent.get("disk_seeks") == 4000
