"""Tests for RLE bit vectors and the adaptive bit-vector codec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter
from repro.util.rle import (
    bitvector_cost,
    decode_bitvector,
    decode_rle,
    encode_bitvector,
    encode_rle,
    pack_bits,
    plain_cost,
    rle_cost,
    runs_of,
)


class TestRuns:
    def test_empty(self):
        assert runs_of([]) == []

    def test_single_run(self):
        assert runs_of([1, 1, 1]) == [3]

    def test_alternating(self):
        assert runs_of([0, 1, 0, 1]) == [1, 1, 1, 1]

    def test_mixed(self):
        assert runs_of([1, 1, 0, 0, 0, 1]) == [2, 3, 1]


class TestRLE:
    @pytest.mark.parametrize(
        "bits",
        [
            [],
            [0],
            [1],
            [1] * 50,
            [0] * 50,
            [1, 0] * 25,
            [1, 1, 0, 0, 0, 0, 1, 1, 1],
        ],
    )
    def test_roundtrip(self, bits):
        writer = BitWriter()
        encode_rle(writer, bits)
        assert decode_rle(BitReader(writer.to_bytes())) == bits

    def test_rle_cost_is_exact(self):
        bits = [1] * 20 + [0] * 5 + [1]
        writer = BitWriter()
        encode_rle(writer, bits)
        assert len(writer) == rle_cost(bits)

    def test_long_runs_beat_plain(self):
        bits = [1] * 200
        assert rle_cost(bits) < plain_cost(bits)

    def test_alternating_bits_prefer_plain(self):
        bits = [1, 0] * 40
        assert plain_cost(bits) < rle_cost(bits)

    def test_corrupt_run_length_raises(self):
        # Declare 2 bits but encode a 3-bit run.
        writer = BitWriter()
        from repro.util.varint import encode_gamma

        encode_gamma(writer, 2)  # declared length
        writer.write_bit(1)  # first value
        encode_gamma(writer, 2)  # run of 3 > declared 2
        with pytest.raises(CodecError):
            decode_rle(BitReader(writer.to_bytes()))


class TestAdaptiveBitvector:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=120))
    def test_property_roundtrip(self, bits):
        writer = BitWriter()
        encode_bitvector(writer, bits)
        assert decode_bitvector(BitReader(writer.to_bytes())) == bits

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=120))
    def test_property_cost_is_exact(self, bits):
        writer = BitWriter()
        encode_bitvector(writer, bits)
        assert len(writer) == bitvector_cost(bits)

    def test_picks_cheaper_scheme(self):
        dense_runs = [1] * 100
        assert bitvector_cost(dense_runs) == 1 + rle_cost(dense_runs)
        noisy = [1, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1]
        assert bitvector_cost(noisy) == 1 + plain_cost(noisy)


def test_pack_bits_msb_first():
    assert pack_bits([1, 0, 1, 0]) == bytes([0b1010_0000])
