"""Tests for canonical Huffman coding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter
from repro.util.huffman import (
    HuffmanCodec,
    huffman_code_lengths,
    limit_code_lengths,
)


class TestCodeLengths:
    def test_empty_alphabet(self):
        assert huffman_code_lengths({}) == {}

    def test_single_symbol_gets_one_bit(self):
        assert huffman_code_lengths({7: 100}) == {7: 1}

    def test_skewed_frequencies_give_shorter_codes_to_frequent(self):
        lengths = huffman_code_lengths({0: 1000, 1: 10, 2: 10, 3: 1})
        assert lengths[0] < lengths[3]

    def test_uniform_frequencies_give_balanced_code(self):
        lengths = huffman_code_lengths({i: 5 for i in range(8)})
        assert all(length == 3 for length in lengths.values())

    def test_kraft_inequality_holds(self):
        lengths = huffman_code_lengths({i: i + 1 for i in range(33)})
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-12

    def test_zero_frequency_symbols_still_coded(self):
        lengths = huffman_code_lengths({0: 0, 1: 100})
        assert 0 in lengths and 1 in lengths


class TestLimitLengths:
    def test_no_change_when_within_limit(self):
        lengths = {0: 2, 1: 2, 2: 2, 3: 2}
        assert limit_code_lengths(lengths, 4) == lengths

    def test_clamp_repairs_kraft(self):
        # Degenerate chain: lengths 1,2,3,...  Clamping to 4 forces repair.
        lengths = {i: i + 1 for i in range(8)}
        limited = limit_code_lengths(lengths, 4)
        assert max(limited.values()) <= 4
        assert sum(2.0 ** -l for l in limited.values()) <= 1.0 + 1e-12

    def test_invalid_limit_rejected(self):
        with pytest.raises(CodecError):
            limit_code_lengths({0: 1}, 0)


class TestHuffmanCodec:
    def test_roundtrip_skewed(self):
        codec = HuffmanCodec.from_frequencies({i: 2**i for i in range(10)})
        symbols = [9, 0, 3, 9, 9, 1, 5]
        writer = BitWriter()
        codec.encode_sequence(writer, symbols)
        reader = BitReader(writer.to_bytes())
        assert codec.decode_sequence(reader, len(symbols)) == symbols

    def test_unknown_symbol_rejected(self):
        codec = HuffmanCodec.from_frequencies({0: 1, 1: 1})
        with pytest.raises(CodecError):
            codec.encode_symbol(BitWriter(), 5)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(CodecError):
            HuffmanCodec({})

    def test_encoded_size_matches_actual(self):
        codec = HuffmanCodec.from_frequencies({i: i * i + 1 for i in range(20)})
        symbols = list(range(20)) * 3
        writer = BitWriter()
        codec.encode_sequence(writer, symbols)
        assert len(writer) == codec.encoded_size_bits(symbols)

    def test_canonical_codes_are_prefix_free(self):
        codec = HuffmanCodec.from_frequencies({i: (i % 5) + 1 for i in range(40)})
        codes = {
            symbol: format(code, f"0{length}b")
            for symbol, (code, length) in codec._codes.items()
        }
        values = list(codes.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert not a.startswith(b) and not b.startswith(a)

    def test_high_in_degree_symbol_gets_short_code(self):
        frequencies = {i: 1 for i in range(100)}
        frequencies[42] = 10_000
        codec = HuffmanCodec.from_frequencies(frequencies)
        assert codec.code_length(42) == min(codec.lengths.values())

    def test_serialize_lengths_roundtrip(self):
        codec = HuffmanCodec.from_frequencies({i: i + 1 for i in range(25)})
        writer = BitWriter()
        codec.serialize_lengths(writer)
        restored = HuffmanCodec.deserialize_lengths(BitReader(writer.to_bytes()))
        assert restored.lengths == codec.lengths

    def test_sparse_alphabet_serialization(self):
        codec = HuffmanCodec.from_frequencies({3: 5, 17: 1, 90: 2})
        writer = BitWriter()
        codec.serialize_lengths(writer)
        restored = HuffmanCodec.deserialize_lengths(BitReader(writer.to_bytes()))
        assert restored.lengths == codec.lengths


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=10_000),
        min_size=2,
        max_size=80,
    ),
    st.data(),
)
def test_property_roundtrip_random_alphabets(frequencies, data):
    codec = HuffmanCodec.from_frequencies(frequencies)
    symbols = data.draw(
        st.lists(st.sampled_from(sorted(frequencies)), max_size=50)
    )
    writer = BitWriter()
    codec.encode_sequence(writer, symbols)
    reader = BitReader(writer.to_bytes())
    assert codec.decode_sequence(reader, len(symbols)) == symbols
