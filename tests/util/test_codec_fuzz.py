"""Seeded round-trip fuzzing across the whole codec stack.

Every encoder in ``repro.util`` must invert exactly under its decoder for
randomized inputs *and* for the edge shapes that have historically broken
bit-level codecs: empty input, a single symbol, all-identical symbols, and
maximum-gap values.  Seeds are fixed so failures reproduce.
"""

from __future__ import annotations

import random

import pytest

from repro.util.bitio import BitReader, BitWriter
from repro.util.huffman import HuffmanCodec
from repro.util.rle import decode_bitvector, decode_rle, encode_bitvector, encode_rle
from repro.util.varint import (
    decode_delta,
    decode_gamma,
    decode_golomb,
    decode_minimal_binary,
    decode_nibble,
    decode_unary,
    decode_vbyte,
    encode_delta,
    encode_gamma,
    encode_golomb,
    encode_minimal_binary,
    encode_nibble,
    encode_unary,
    encode_vbyte,
)

SEEDS = range(6)

#: Largest magnitude the fuzzers exercise (max-gap shape: a jump from the
#: first to the last page id of a billion-page crawl).
MAX_GAP = 2**40


def _value_shapes(rng: random.Random) -> list[list[int]]:
    """Integer-sequence edge shapes plus a randomized batch."""
    return [
        [],  # empty
        [0],  # single symbol, smallest
        [MAX_GAP],  # single symbol, largest
        [7] * 50,  # all identical
        [0, MAX_GAP, 0, MAX_GAP],  # alternating extremes
        [rng.randrange(MAX_GAP) for _ in range(200)],
        [rng.choice([0, 1, 2]) for _ in range(200)],  # small-value heavy
    ]


class TestVarintRoundTrips:
    CODES = [
        ("gamma", encode_gamma, decode_gamma, MAX_GAP),
        ("delta", encode_delta, decode_delta, MAX_GAP),
        ("nibble", encode_nibble, decode_nibble, MAX_GAP),
        # Unary is linear in the value: bound the magnitude.
        ("unary", encode_unary, decode_unary, 2000),
    ]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name,encode,decode,bound", CODES, ids=lambda c: str(c))
    def test_round_trip(self, seed, name, encode, decode, bound):
        rng = random.Random(seed)
        for values in _value_shapes(rng):
            values = [min(v, bound) for v in values]
            writer = BitWriter()
            for value in values:
                encode(writer, value)
            reader = BitReader(writer.to_bytes())
            assert [decode(reader) for _ in values] == values, (name, seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_golomb_round_trip(self, seed):
        rng = random.Random(seed)
        for modulus in (1, 2, 7, 64, 1000):
            # The quotient is unary-coded, so bound values by the modulus to
            # keep streams small while still crossing remainder boundaries.
            bound = modulus * 50
            for values in _value_shapes(rng):
                values = [value % bound for value in values]
                writer = BitWriter()
                for value in values:
                    encode_golomb(writer, value, modulus)
                reader = BitReader(writer.to_bytes())
                assert [
                    decode_golomb(reader, modulus) for _ in values
                ] == values, (modulus, seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_minimal_binary_round_trip(self, seed):
        rng = random.Random(seed)
        for bound in (1, 2, 3, 100, MAX_GAP):
            values = [rng.randrange(bound) for _ in range(100)] + [0, bound - 1]
            writer = BitWriter()
            for value in values:
                encode_minimal_binary(writer, value, bound)
            reader = BitReader(writer.to_bytes())
            assert [
                decode_minimal_binary(reader, bound) for _ in values
            ] == values, (bound, seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_vbyte_round_trip(self, seed):
        rng = random.Random(seed)
        for values in _value_shapes(rng):
            blob = b"".join(encode_vbyte(value) for value in values)
            offset = 0
            decoded = []
            for _ in values:
                value, offset = decode_vbyte(blob, offset)
                decoded.append(value)
            assert decoded == values
            assert offset == len(blob)  # no trailing garbage consumed


class TestRleRoundTrips:
    def _bit_shapes(self, rng: random.Random) -> list[list[int]]:
        return [
            [],  # empty
            [0],
            [1],  # single bit
            [1] * 200,  # all identical
            [0] * 200,
            [0, 1] * 100,  # worst case for RLE: run length 1 throughout
            [0] * 199 + [1],  # max-gap: one set bit at the very end
            [1] + [0] * 199,
            [rng.randrange(2) for _ in range(300)],
            [1 if rng.random() < 0.05 else 0 for _ in range(300)],  # sparse
        ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rle_round_trip(self, seed):
        rng = random.Random(seed)
        for bits in self._bit_shapes(rng):
            writer = BitWriter()
            encode_rle(writer, bits)
            assert decode_rle(BitReader(writer.to_bytes())) == bits

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bitvector_round_trip(self, seed):
        rng = random.Random(seed)
        for bits in self._bit_shapes(rng):
            writer = BitWriter()
            encode_bitvector(writer, bits)
            assert decode_bitvector(BitReader(writer.to_bytes())) == bits

    @pytest.mark.parametrize("seed", SEEDS)
    def test_concatenated_streams_decode_in_order(self, seed):
        # Codecs must not over-read: several vectors share one stream.
        rng = random.Random(seed)
        shapes = self._bit_shapes(rng)
        writer = BitWriter()
        for bits in shapes:
            encode_rle(writer, bits)
        reader = BitReader(writer.to_bytes())
        for bits in shapes:
            assert decode_rle(reader) == bits


class TestHuffmanRoundTrips:
    def _codec_and_symbols(
        self, rng: random.Random, alphabet: int, count: int
    ) -> tuple[HuffmanCodec, list[int]]:
        frequencies = {s: rng.randrange(1, 1000) for s in range(alphabet)}
        symbols = [rng.randrange(alphabet) for _ in range(count)]
        return HuffmanCodec.from_frequencies(frequencies), symbols

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sequence_round_trip(self, seed):
        rng = random.Random(seed)
        for alphabet in (1, 2, 17, 256):
            codec, symbols = self._codec_and_symbols(rng, alphabet, 500)
            for sequence in ([], symbols[:1], [0] * 100, symbols):
                writer = BitWriter()
                codec.encode_sequence(writer, sequence)
                reader = BitReader(writer.to_bytes() + b"\x00\x00")
                assert codec.decode_sequence(reader, len(sequence)) == sequence

    @pytest.mark.parametrize("seed", SEEDS)
    def test_skewed_frequencies_round_trip(self, seed):
        # Extreme skew produces max-length codes — the decoder window edge.
        rng = random.Random(seed)
        frequencies = {s: 2**s for s in range(16)}
        codec = HuffmanCodec.from_frequencies(frequencies)
        symbols = [rng.randrange(16) for _ in range(500)]
        writer = BitWriter()
        codec.encode_sequence(writer, symbols)
        reader = BitReader(writer.to_bytes() + b"\x00\x00")
        assert codec.decode_sequence(reader, len(symbols)) == symbols

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serialized_lengths_rebuild_identical_codec(self, seed):
        rng = random.Random(seed)
        codec, symbols = self._codec_and_symbols(rng, 50, 200)
        writer = BitWriter()
        codec.serialize_lengths(writer)
        codec.encode_sequence(writer, symbols)
        reader = BitReader(writer.to_bytes() + b"\x00\x00")
        rebuilt = HuffmanCodec.deserialize_lengths(reader)
        assert rebuilt.lengths == codec.lengths
        assert rebuilt.decode_sequence(reader, len(symbols)) == symbols


class TestCrcFrameCodec:
    """Property tests for the storage-integrity frame codec.

    The frame (``vbyte(len) + payload + crc32``) guards every auxiliary
    table on disk, so its two properties are load-bearing: exact inversion
    for arbitrary payloads, and detection of *every* single-bit flip
    anywhere in the frame — header, payload or checksum.
    """

    def _payload_shapes(self, rng: random.Random) -> list[bytes]:
        return [
            b"",  # empty payload (header + CRC only)
            b"\x00",  # single zero byte
            b"\xff" * 300,  # all ones, multi-byte vbyte header
            bytes(rng.randrange(256) for _ in range(1)),
            bytes(rng.randrange(256) for _ in range(257)),
            rng.randbytes(1000),
        ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, seed):
        from repro.storage.integrity import decode_frame, encode_frame

        rng = random.Random(seed)
        for payload in self._payload_shapes(rng):
            frame = encode_frame(payload)
            decoded, position = decode_frame(frame)
            assert decoded == payload
            assert position == len(frame)  # no trailing garbage consumed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_concatenated_frames_decode_in_order(self, seed):
        from repro.storage.integrity import decode_frame, encode_frame

        rng = random.Random(seed)
        payloads = self._payload_shapes(rng)
        blob = b"".join(encode_frame(payload) for payload in payloads)
        position = 0
        for payload in payloads:
            decoded, position = decode_frame(blob, position)
            assert decoded == payload
        assert position == len(blob)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_single_bit_flip_detected(self, seed):
        from repro.errors import CorruptionError
        from repro.storage.integrity import decode_frame, encode_frame

        rng = random.Random(seed)
        payload = rng.randbytes(64)
        frame = encode_frame(payload)
        for byte_index in range(len(frame)):
            for bit in range(8):
                corrupt = bytearray(frame)
                corrupt[byte_index] ^= 1 << bit
                # A header flip may still parse as some other length; the
                # CRC must then catch the mismatch — decoding any flipped
                # frame without an error is the failure.
                with pytest.raises(CorruptionError):
                    decode_frame(bytes(corrupt))

    def test_truncation_detected_at_every_length(self):
        from repro.errors import CorruptionError
        from repro.storage.integrity import decode_frame, encode_frame

        frame = encode_frame(bytes(range(64)))
        for cut in range(len(frame)):
            with pytest.raises(CorruptionError):
                decode_frame(frame[:cut])


class TestBitioRoundTrips:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_width_writes_round_trip(self, seed):
        rng = random.Random(seed)
        fields = []
        writer = BitWriter()
        for _ in range(500):
            width = rng.randrange(1, 64)
            value = rng.randrange(1 << width)
            fields.append((value, width))
            writer.write_bits(value, width)
        reader = BitReader(writer.to_bytes())
        for value, width in fields:
            assert reader.read_bits(width) == value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recorded_positions_seek_back_exactly(self, seed):
        # The on-disk index files jump to recorded bit offsets; writing a
        # stream and re-reading each field from its recorded offset (in
        # random order) must reproduce every value.
        rng = random.Random(seed)
        writer = BitWriter()
        fields = []
        for _ in range(200):
            width = rng.randrange(1, 33)
            value = rng.randrange(1 << width)
            fields.append((len(writer), value, width))
            writer.write_bits(value, width)
        reader = BitReader(writer.to_bytes())
        rng.shuffle(fields)
        for offset, value, width in fields:
            reader.seek(offset)
            assert reader.read_bits(width) == value

    def test_zero_width_fields(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        writer.write_bits(1, 1)
        writer.write_bits(0, 0)
        reader = BitReader(writer.to_bytes())
        assert reader.read_bits(0) == 0
        assert reader.read_bit() == 1
