"""Tests for the integer codes (unary, gamma, delta, Golomb, vbyte, nybble,
minimal binary)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter
from repro.util.varint import (
    decode_delta,
    decode_gamma,
    decode_golomb,
    decode_minimal_binary,
    decode_nibble,
    decode_unary,
    decode_vbyte,
    delta_cost,
    encode_delta,
    encode_gamma,
    encode_golomb,
    encode_minimal_binary,
    encode_nibble,
    encode_unary,
    encode_vbyte,
    gamma_cost,
    golomb_parameter,
    nibble_cost,
)

VALUES = [0, 1, 2, 3, 7, 8, 63, 64, 100, 1023, 1024, 10**6]


@pytest.mark.parametrize("value", VALUES)
def test_gamma_roundtrip(value):
    writer = BitWriter()
    encode_gamma(writer, value)
    assert decode_gamma(BitReader(writer.to_bytes())) == value


@pytest.mark.parametrize("value", VALUES)
def test_delta_roundtrip(value):
    writer = BitWriter()
    encode_delta(writer, value)
    assert decode_delta(BitReader(writer.to_bytes())) == value


@pytest.mark.parametrize("value", VALUES)
def test_gamma_cost_is_exact(value):
    writer = BitWriter()
    encode_gamma(writer, value)
    assert len(writer) == gamma_cost(value)


@pytest.mark.parametrize("value", VALUES)
def test_delta_cost_is_exact(value):
    writer = BitWriter()
    encode_delta(writer, value)
    assert len(writer) == delta_cost(value)


@pytest.mark.parametrize("value", VALUES)
def test_nibble_cost_is_exact(value):
    writer = BitWriter()
    encode_nibble(writer, value)
    assert len(writer) == nibble_cost(value)


def test_gamma_rejects_negative():
    with pytest.raises(CodecError):
        encode_gamma(BitWriter(), -1)
    with pytest.raises(CodecError):
        gamma_cost(-1)


def test_unary_roundtrip_sequence():
    writer = BitWriter()
    for value in (0, 3, 1, 7):
        encode_unary(writer, value)
    reader = BitReader(writer.to_bytes())
    assert [decode_unary(reader) for _ in range(4)] == [0, 3, 1, 7]


class TestGolomb:
    @pytest.mark.parametrize("modulus", [1, 2, 3, 7, 8, 64])
    @pytest.mark.parametrize("value", [0, 1, 5, 100, 1000])
    def test_roundtrip(self, modulus, value):
        writer = BitWriter()
        encode_golomb(writer, value, modulus)
        assert decode_golomb(BitReader(writer.to_bytes()), modulus) == value

    def test_invalid_modulus(self):
        with pytest.raises(CodecError):
            encode_golomb(BitWriter(), 1, 0)
        with pytest.raises(CodecError):
            decode_golomb(BitReader(b"\xff"), 0)

    def test_parameter_heuristic(self):
        assert golomb_parameter(0.5) == 1
        assert golomb_parameter(0.01) == 69
        assert golomb_parameter(1.5) == 1  # degenerate densities clamp


class TestMinimalBinary:
    @pytest.mark.parametrize("bound", [1, 2, 3, 5, 8, 13, 256])
    def test_roundtrip_all_values(self, bound):
        for value in range(bound):
            writer = BitWriter()
            encode_minimal_binary(writer, value, bound)
            assert decode_minimal_binary(BitReader(writer.to_bytes()), bound) == value

    def test_bound_one_uses_zero_bits(self):
        writer = BitWriter()
        encode_minimal_binary(writer, 0, 1)
        assert len(writer) == 0

    def test_non_power_of_two_uses_short_codes(self):
        # bound 5 -> values 0..2 get 2 bits, 3..4 get 3 bits
        writer = BitWriter()
        encode_minimal_binary(writer, 0, 5)
        assert len(writer) == 2
        writer = BitWriter()
        encode_minimal_binary(writer, 4, 5)
        assert len(writer) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            encode_minimal_binary(BitWriter(), 5, 5)


class TestVByte:
    @pytest.mark.parametrize("value", VALUES + [2**35])
    def test_roundtrip(self, value):
        data = encode_vbyte(value)
        decoded, offset = decode_vbyte(data)
        assert decoded == value
        assert offset == len(data)

    def test_concatenated_stream(self):
        blob = b"".join(encode_vbyte(v) for v in VALUES)
        position = 0
        out = []
        while position < len(blob):
            value, position = decode_vbyte(blob, position)
            out.append(value)
        assert out == VALUES

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            decode_vbyte(b"\x80")


@given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=50))
def test_property_gamma_stream(values):
    writer = BitWriter()
    for value in values:
        encode_gamma(writer, value)
    reader = BitReader(writer.to_bytes())
    assert [decode_gamma(reader) for _ in values] == values


@given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=50))
def test_property_nibble_stream(values):
    writer = BitWriter()
    for value in values:
        encode_nibble(writer, value)
    reader = BitReader(writer.to_bytes())
    assert [decode_nibble(reader) for _ in values] == values


@given(st.integers(min_value=0, max_value=2**20))
def test_property_gamma_monotone_cost(value):
    # gamma codes never shrink when the value grows by an order of magnitude
    assert gamma_cost(value * 2 + 1) >= gamma_cost(value)
