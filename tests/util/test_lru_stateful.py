"""Stateful model test: LRUCache against a reference implementation."""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.util.lru import LRUCache

CAPACITY = 64


class _ModelLRU:
    """Straightforward reference LRU with the same admission rules."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self.used = 0

    def get(self, key: int):
        if key not in self.entries:
            return None
        self.entries.move_to_end(key)
        return self.entries[key][0]

    def put(self, key: int, value: int, size: int) -> None:
        if key in self.entries:
            self.used -= self.entries.pop(key)[1]
        self.entries[key] = (value, size)
        self.used += size
        while self.used > self.capacity and len(self.entries) > 1:
            old_key, (old_value, old_size) = self.entries.popitem(last=False)
            if old_key == key and self.entries:
                self.entries[old_key] = (old_value, old_size)
                self.entries.move_to_end(old_key, last=False)
                old_key, (old_value, old_size) = self.entries.popitem(last=False)
            self.used -= old_size

    def pop(self, key: int):
        entry = self.entries.pop(key, None)
        if entry is None:
            return None
        self.used -= entry[1]
        return entry[0]


class LRUMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.cache: LRUCache = LRUCache(CAPACITY)
        self.model = _ModelLRU(CAPACITY)

    @rule(key=st.integers(0, 20), value=st.integers(), size=st.integers(0, 40))
    def put(self, key, value, size):
        self.cache.put(key, value, size)
        self.model.put(key, value, size)

    @rule(key=st.integers(0, 20))
    def get(self, key):
        assert self.cache.get(key) == self.model.get(key)

    @rule(key=st.integers(0, 20))
    def pop(self, key):
        assert self.cache.pop(key) == self.model.pop(key)

    @invariant()
    def same_contents(self):
        assert self.cache.keys() == list(self.model.entries)
        assert self.cache.used_bytes == self.model.used


TestLRUStateful = LRUMachine.TestCase
TestLRUStateful.settings = settings(max_examples=40, stateful_step_count=40)
