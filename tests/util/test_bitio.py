"""Unit and property tests for the MSB-first bit stream."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import BitStreamError
from repro.util.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().to_bytes() == b""

    def test_single_bit_padded_to_byte(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.to_bytes() == b"\x80"

    def test_bits_are_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        assert writer.to_bytes() == bytes([0b1011_0000])

    def test_bit_length_tracks_every_write(self):
        writer = BitWriter()
        writer.write_bit(0)
        writer.write_bits(0b101, 3)
        writer.write_unary(2)
        assert len(writer) == 1 + 3 + 3

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitStreamError):
            writer.write_bits(8, 3)

    def test_negative_width_rejected(self):
        with pytest.raises(BitStreamError):
            BitWriter().write_bits(0, -1)

    def test_negative_unary_rejected(self):
        with pytest.raises(BitStreamError):
            BitWriter().write_unary(-1)

    def test_align_pads_to_byte_boundary(self):
        writer = BitWriter()
        writer.write_bits(0b11, 2)
        writer.align()
        assert len(writer) == 8
        assert writer.to_bytes() == bytes([0b1100_0000])

    def test_extend_concatenates_bit_streams(self):
        left = BitWriter()
        left.write_bits(0b101, 3)
        right = BitWriter()
        right.write_bits(0b11001, 5)
        left.extend(right)
        assert left.to_bytes() == bytes([0b1011_1001])

    def test_byte_aligned_fast_path(self):
        writer = BitWriter()
        writer.write_bits(0xABCD, 16)
        assert writer.to_bytes() == b"\xab\xcd"


class TestBitReader:
    def test_read_single_bits(self):
        reader = BitReader(b"\xa0")  # 1010 0000
        assert [reader.read_bit() for _ in range(4)] == [1, 0, 1, 0]

    def test_read_past_end_raises(self):
        reader = BitReader(b"")
        with pytest.raises(BitStreamError):
            reader.read_bit()

    def test_read_bits_crossing_byte_boundary(self):
        reader = BitReader(b"\xff\x00")
        assert reader.read_bits(12) == 0xFF0

    def test_seek_and_position(self):
        reader = BitReader(b"\x0f")
        reader.seek(4)
        assert reader.position == 4
        assert reader.read_bits(4) == 0xF

    def test_seek_out_of_range_raises(self):
        with pytest.raises(BitStreamError):
            BitReader(b"\x00").seek(9)

    def test_peek_does_not_advance(self):
        reader = BitReader(b"\xc0")
        assert reader.peek_bits(2) == 0b11
        assert reader.position == 0

    def test_peek_past_end_zero_pads(self):
        reader = BitReader(b"\x80")
        reader.seek(7)
        assert reader.peek_bits(8) == 0

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in (0, 1, 5, 13):
            writer.write_unary(value)
        reader = BitReader(writer.to_bytes())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 13]


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
def test_property_bit_roundtrip(bits):
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.to_bytes())
    assert [reader.read_bit() for _ in range(len(bits))] == bits


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**40), st.integers(1, 48)),
        max_size=60,
    )
)
def test_property_mixed_width_roundtrip(pairs):
    pairs = [(value & ((1 << width) - 1), width) for value, width in pairs]
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value, width)
    reader = BitReader(writer.to_bytes())
    assert [reader.read_bits(width) for _, width in pairs] == [v for v, _ in pairs]
