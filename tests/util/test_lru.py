"""Tests for the byte-budgeted LRU cache."""

from __future__ import annotations

import pytest

from repro.util.lru import LRUCache


class TestLRUCache:
    def test_get_miss_returns_none(self):
        cache = LRUCache(100)
        assert cache.get("x") is None
        assert cache.misses == 1

    def test_put_then_get(self):
        cache = LRUCache(100)
        cache.put("x", 42, 10)
        assert cache.get("x") == 42
        assert cache.hits == 1

    def test_eviction_respects_budget(self):
        cache = LRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.put("d", 4, 10)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("d") == 4
        assert cache.used_bytes <= 30

    def test_lru_order_updated_on_get(self):
        cache = LRUCache(20)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.get("a")  # "a" now most recent
        cache.put("c", 3, 10)  # should evict "b"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_eviction_callback_fires(self):
        evicted = []
        cache = LRUCache(10, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        assert evicted == [("a", 1)]

    def test_oversized_entry_admitted_alone(self):
        cache = LRUCache(10)
        cache.put("big", 1, 100)
        assert cache.get("big") == 1  # admitted even though over budget
        cache.put("next", 2, 5)
        assert cache.get("big") is None  # evicted by the next insert

    def test_replace_updates_size(self):
        cache = LRUCache(100)
        cache.put("a", 1, 60)
        cache.put("a", 2, 10)
        assert cache.used_bytes == 10
        assert cache.get("a") == 2

    def test_pop_skips_callback(self):
        evicted = []
        cache = LRUCache(100, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        assert cache.pop("a") == 1
        assert evicted == []
        assert cache.pop("missing") is None

    def test_clear_fires_callbacks(self):
        evicted = []
        cache = LRUCache(100, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.clear()
        assert sorted(evicted) == ["a", "b"]
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_stats_shape(self):
        cache = LRUCache(50)
        cache.put("a", 1, 10)
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["used_bytes"] == 10
        assert stats["capacity_bytes"] == 50

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(10).put("a", 1, -5)

    def test_keys_in_lru_order(self):
        cache = LRUCache(100)
        cache.put("a", 1, 1)
        cache.put("b", 2, 1)
        cache.get("a")
        assert cache.keys() == ["b", "a"]


class TestEvictionCallbackOrdering:
    def test_multiple_evictions_fire_in_lru_order(self):
        evicted = []
        cache = LRUCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # order now: b, c, a
        cache.put("big", 4, 30)  # must evict all three, LRU first
        assert evicted == ["b", "c", "a"]
        assert cache.keys() == ["big"]

    def test_callback_sees_value_after_removal(self):
        # By the time the callback fires the entry is already out of the
        # cache (re-entrant get must miss), as real unload hooks expect.
        observed = []
        cache = LRUCache(10)
        cache._on_evict = lambda k, v: observed.append((k, v, k in cache))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        assert observed == [("a", 1, False)]


class TestOversizedAdmission:
    def test_oversized_entry_evicts_everything_else(self):
        evicted = []
        cache = LRUCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("huge", 3, 1000)
        assert evicted == ["a", "b"]
        assert cache.get("huge") == 3
        assert cache.used_bytes == 1000  # over budget, admitted alone

    def test_oversized_entry_never_self_evicts(self):
        cache = LRUCache(5)
        cache.put("huge", 1, 50)
        assert cache.get("huge") == 1
        assert len(cache) == 1

    def test_zero_capacity_still_admits_alone(self):
        cache = LRUCache(0)
        cache.put("a", 1, 10)
        assert cache.get("a") == 1
        cache.put("b", 2, 10)
        assert cache.get("a") is None
        assert cache.get("b") == 2


class TestReplaceAccounting:
    def test_replace_with_larger_size_can_evict_others(self):
        cache = LRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("a", 3, 25)  # grows a: 35 > 30, evicts LRU "b"
        assert cache.get("b") is None
        assert cache.get("a") == 3
        assert cache.used_bytes == 25

    def test_replace_does_not_double_count(self):
        cache = LRUCache(100)
        cache.put("a", 1, 40)
        for _ in range(5):
            cache.put("a", 2, 40)
        assert cache.used_bytes == 40
        assert len(cache) == 1

    def test_replace_marks_most_recent(self):
        cache = LRUCache(100)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("a", 3, 10)
        assert cache.keys() == ["b", "a"]


class TestRandomizedWorkload:
    """Seeded random operations cross-checked against a reference model.

    The model is a dict plus an explicit recency list — the obviously
    correct (if slow) implementation of the same policy.
    """

    def _run(self, seed: int, capacity: int, operations: int) -> None:
        import random

        rng = random.Random(seed)
        evicted: list[int] = []
        cache = LRUCache(capacity, on_evict=lambda k, v: evicted.append(k))
        model: dict[int, tuple[int, int]] = {}  # key -> (value, size)
        recency: list[int] = []  # least recent first

        def model_shrink() -> None:
            # The just-inserted key sits at the recency tail, so while more
            # than one entry remains the head is always a valid victim.
            used = sum(size for _value, size in model.values())
            while used > capacity and len(model) > 1:
                victim = recency.pop(0)
                used -= model.pop(victim)[1]

        for step in range(operations):
            key = rng.randrange(12)
            action = rng.random()
            if action < 0.45:
                expected = model.get(key)
                actual = cache.get(key)
                if expected is None:
                    assert actual is None, (seed, step, key)
                else:
                    assert actual == expected[0], (seed, step, key)
                    recency.remove(key)
                    recency.append(key)
            elif action < 0.9:
                value = rng.randrange(1000)
                size = rng.randrange(1, capacity // 2)
                cache.put(key, value, size)
                if key in model:
                    recency.remove(key)
                    del model[key]
                model[key] = (value, size)
                recency.append(key)
                model_shrink()
            else:
                expected = model.pop(key, None)
                if expected is not None:
                    recency.remove(key)
                assert cache.pop(key) == (
                    expected[0] if expected is not None else None
                ), (seed, step, key)
            assert set(cache.keys()) == set(model), (seed, step)
            assert cache.keys() == recency, (seed, step)
            assert cache.used_bytes == sum(
                size for _value, size in model.values()
            ), (seed, step)

    def test_seeded_workloads_match_reference_model(self):
        for seed in range(8):
            self._run(seed=seed, capacity=64, operations=400)

    def test_tiny_capacity_workload(self):
        self._run(seed=99, capacity=8, operations=300)
