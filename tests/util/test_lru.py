"""Tests for the byte-budgeted LRU cache."""

from __future__ import annotations

import pytest

from repro.util.lru import LRUCache


class TestLRUCache:
    def test_get_miss_returns_none(self):
        cache = LRUCache(100)
        assert cache.get("x") is None
        assert cache.misses == 1

    def test_put_then_get(self):
        cache = LRUCache(100)
        cache.put("x", 42, 10)
        assert cache.get("x") == 42
        assert cache.hits == 1

    def test_eviction_respects_budget(self):
        cache = LRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.put("d", 4, 10)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("d") == 4
        assert cache.used_bytes <= 30

    def test_lru_order_updated_on_get(self):
        cache = LRUCache(20)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.get("a")  # "a" now most recent
        cache.put("c", 3, 10)  # should evict "b"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_eviction_callback_fires(self):
        evicted = []
        cache = LRUCache(10, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        assert evicted == [("a", 1)]

    def test_oversized_entry_admitted_alone(self):
        cache = LRUCache(10)
        cache.put("big", 1, 100)
        assert cache.get("big") == 1  # admitted even though over budget
        cache.put("next", 2, 5)
        assert cache.get("big") is None  # evicted by the next insert

    def test_replace_updates_size(self):
        cache = LRUCache(100)
        cache.put("a", 1, 60)
        cache.put("a", 2, 10)
        assert cache.used_bytes == 10
        assert cache.get("a") == 2

    def test_pop_skips_callback(self):
        evicted = []
        cache = LRUCache(100, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        assert cache.pop("a") == 1
        assert evicted == []
        assert cache.pop("missing") is None

    def test_clear_fires_callbacks(self):
        evicted = []
        cache = LRUCache(100, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.clear()
        assert sorted(evicted) == ["a", "b"]
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_stats_shape(self):
        cache = LRUCache(50)
        cache.put("a", 1, 10)
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["used_bytes"] == 10
        assert stats["capacity_bytes"] == 50

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(10).put("a", 1, -5)

    def test_keys_in_lru_order(self):
        cache = LRUCache(100)
        cache.put("a", 1, 1)
        cache.put("b", 2, 1)
        cache.get("a")
        assert cache.keys() == ["b", "a"]
