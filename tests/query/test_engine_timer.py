"""Tests for the engine's navigation timer: re-entrancy, thread safety."""

from __future__ import annotations

import threading
import time

import pytest

from repro.baselines import FlatFileRepresentation
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.query.engine import QueryEngine
from repro.webdata.corpus import Repository

URLS = [
    "http://a.example/p0.html",
    "http://a.example/p1.html",
    "http://b.example/p2.html",
]
TERMS = [("alpha",), ("beta",), ("gamma",)]
EDGES = [(0, 1), (1, 2), (2, 0)]


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    repo = Repository.from_parts(URLS, EDGES, TERMS)
    base = tmp_path_factory.mktemp("timer")
    forward = FlatFileRepresentation(repo.graph, base / "f")
    yield QueryEngine(repo, TextIndex(repo), PageRankIndex(repo), forward)
    forward.close()


class TestNavigationTimer:
    def test_accumulates_wall_time(self, engine):
        engine.reset_navigation_time()
        with engine.navigation_timer():
            time.sleep(0.01)
        assert engine.navigation_seconds >= 0.01

    def test_reset_zeroes_accumulator(self, engine):
        with engine.navigation_timer():
            pass
        engine.reset_navigation_time()
        assert engine.navigation_seconds == 0.0

    def test_nested_blocks_count_once(self, engine):
        # A timed block calling a timed helper must charge its wall time
        # once: only the outermost block reaches the accumulator.
        engine.reset_navigation_time()
        with engine.navigation_timer("out_neighborhood"):
            with engine.navigation_timer("in_neighborhood"):
                time.sleep(0.05)
        seconds = engine.navigation_seconds
        assert 0.05 <= seconds < 0.1  # double-counting would be >= 0.1

    def test_nested_blocks_each_reach_their_histogram(self, engine):
        engine.histograms.clear()
        with engine.navigation_timer("outer_op"):
            with engine.navigation_timer("inner_op"):
                pass
        assert engine.histograms.get("outer_op").count == 1
        assert engine.histograms.get("inner_op").count == 1

    def test_exception_still_accumulates(self, engine):
        engine.reset_navigation_time()
        with pytest.raises(RuntimeError):
            with engine.navigation_timer():
                time.sleep(0.01)
                raise RuntimeError("boom")
        assert engine.navigation_seconds >= 0.01

    def test_concurrent_timers_lose_no_updates(self, engine):
        engine.reset_navigation_time()
        engine.histograms.clear()
        threads = 8
        blocks = 50
        barrier = threading.Barrier(threads)

        def worker() -> None:
            barrier.wait()
            for _ in range(blocks):
                with engine.navigation_timer("concurrent_op"):
                    pass

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert engine.histograms.get("concurrent_op").count == threads * blocks
        assert engine.navigation_seconds > 0.0

    def test_nesting_is_per_thread(self, engine):
        # Thread B's outermost block must accumulate even while thread A
        # sits inside a nested block: depth tracking is thread-local.
        engine.reset_navigation_time()
        inside = threading.Event()
        release = threading.Event()

        def holder() -> None:
            with engine.navigation_timer("hold"):
                inside.set()
                release.wait(5)

        def independent() -> None:
            inside.wait(5)
            with engine.navigation_timer("independent"):
                time.sleep(0.02)
            release.set()

        threads = [
            threading.Thread(target=holder),
            threading.Thread(target=independent),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Both were outermost in their own thread: both accumulate.
        assert engine.navigation_seconds >= 0.04
