"""Tests for graph-navigation primitives over representations."""

from __future__ import annotations

import pytest

from repro.baselines import FlatFileRepresentation
from repro.graph.digraph import Digraph
from repro.query.ops import (
    count_links_between,
    in_neighborhood_of,
    induced_link_counts,
    out_neighborhood_of,
)


@pytest.fixture()
def reps(tmp_path):
    graph = Digraph.from_adjacency(
        [
            [1, 2],      # 0
            [2, 3],      # 1
            [3],         # 2
            [0],         # 3
            [0, 1, 2],   # 4
        ]
    )
    forward = FlatFileRepresentation(graph, tmp_path / "f")
    backward = FlatFileRepresentation(graph.transpose(), tmp_path / "b")
    yield forward, backward
    forward.close()
    backward.close()


class TestNeighborhoods:
    def test_out_neighborhood(self, reps):
        forward, _ = reps
        rows = out_neighborhood_of(forward, [0, 1])
        assert rows == {0: [1, 2], 1: [2, 3]}

    def test_in_neighborhood(self, reps):
        _, backward = reps
        rows = in_neighborhood_of(backward, [0])
        assert rows == {0: [3, 4]}

    def test_empty_set(self, reps):
        forward, _ = reps
        assert out_neighborhood_of(forward, []) == {}


class TestLinkCounting:
    def test_count_links_between(self, reps):
        _, backward = reps
        # links from {0, 1} into {2, 3}: 0->2, 1->2, 1->3, 2->3 (2 not src)
        count = count_links_between(backward, {0, 1}, [2, 3])
        assert count == 3

    def test_no_links(self, reps):
        _, backward = reps
        assert count_links_between(backward, {3}, [4]) == 0


class TestInducedCounts:
    def test_counts_within_set(self, reps):
        forward, _ = reps
        counts = induced_link_counts(forward, {0, 1, 2})
        # inside {0,1,2}: 0->1, 0->2, 1->2  (2->3 leaves the set)
        assert counts == {0: 0, 1: 1, 2: 2}

    def test_self_loops_ignored(self, tmp_path):
        graph = Digraph.from_adjacency([[0, 1], [0]])
        forward = FlatFileRepresentation(graph, tmp_path / "s")
        counts = induced_link_counts(forward, {0, 1})
        assert counts == {0: 1, 1: 1}
        forward.close()
