"""Tests for the six paper queries on a hand-crafted repository with
fully known answers, plus cross-representation result equivalence."""

from __future__ import annotations

import pytest

from repro.baselines import FlatFileRepresentation
from repro.errors import QueryError
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.query.engine import QueryEngine
from repro.query.workload import (
    query1_referred_universities,
    query2_comic_popularity,
    query3_kleinberg_base_set,
    query4_popular_topic_pages,
    query5_intra_set_ranking,
    query6_joint_references,
    run_query,
)
from repro.webdata.corpus import Repository

# A miniature Web with every feature the six queries touch:
#  0 www.stanford.edu/p0    "mobile networking"  -> 1, 4, 6
#  1 cs.stanford.edu/p1     "mobile networking"  -> 4
#  2 www.stanford.edu/p2    "dilbert dogbert"    -> 8
#  3 www.stanford.edu/p3    "optical interferometry" -> 9
#  4 www.mit.edu/p4         "quantum cryptography"   -> 0
#  5 www.berkeley.edu/p5    "optical interferometry" -> 9
#  6 www.caltech.edu/p6     (plain)              -> 0
#  7 www.stanford.edu/p7    "internet censorship"-> 0
#  8 www.dilbert.com/p8     "dilbert"            -> []
#  9 www.archive.org/p9     "computer music synthesis" -> 3
URLS = [
    "http://www.stanford.edu/p0.html",
    "http://cs.stanford.edu/p1.html",
    "http://www.stanford.edu/p2.html",
    "http://www.stanford.edu/p3.html",
    "http://www.mit.edu/p4.html",
    "http://www.berkeley.edu/p5.html",
    "http://www.caltech.edu/p6.html",
    "http://www.stanford.edu/p7.html",
    "http://www.dilbert.com/p8.html",
    "http://www.archive.org/p9.html",
]
TERMS = [
    ("mobile", "networking"),
    ("mobile", "networking", "lab"),
    ("dilbert", "dogbert"),
    ("optical", "interferometry"),
    ("quantum", "cryptography"),
    ("optical", "interferometry"),
    ("plain",),
    ("internet", "censorship"),
    ("dilbert",),
    ("computer", "music", "synthesis"),
]
EDGES = [
    (0, 1), (0, 4), (0, 6),
    (1, 4),
    (2, 8),
    (3, 9),
    (4, 0),
    (5, 9),
    (6, 0),
    (7, 0),
    (9, 3),
]


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    repo = Repository.from_parts(URLS, EDGES, TERMS)
    base = tmp_path_factory.mktemp("workload")
    forward = FlatFileRepresentation(repo.graph, base / "f")
    backward = FlatFileRepresentation(repo.graph.transpose(), base / "b")
    yield QueryEngine(repo, TextIndex(repo), PageRankIndex(repo), forward, backward)
    forward.close()
    backward.close()


class TestQuery1:
    def test_finds_referred_edu_domains(self, engine):
        result = query1_referred_universities(engine)
        domains = dict(result.payload["domains"])
        # Seed = pages 0 and 1; out-links to mit.edu (0,1) and caltech (0).
        assert set(domains) == {"mit.edu", "caltech.edu"}
        assert domains["mit.edu"] > domains["caltech.edu"]

    def test_excludes_source_domain(self, engine):
        result = query1_referred_universities(engine)
        assert "stanford.edu" not in dict(result.payload["domains"])

    def test_navigation_time_recorded(self, engine):
        result = query1_referred_universities(engine)
        assert result.navigation_seconds >= 0.0


class TestQuery2:
    def test_counts_words_and_links(self, engine):
        result = query2_comic_popularity(engine)
        dilbert = result.payload["popularity"]["Dilbert"]
        # Page 2 has two Dilbert words; link 2 -> 8 is the one site link.
        assert dilbert["c1_word_pages"] == 1
        assert dilbert["c2_links"] == 1
        assert dilbert["popularity"] == 2

    def test_ranking_puts_dilbert_first(self, engine):
        result = query2_comic_popularity(engine)
        assert result.payload["ranking"][0] == "Dilbert"


class TestQuery3:
    def test_base_set_contains_root_and_neighbors(self, engine):
        result = query3_kleinberg_base_set(engine)
        # Root = {7}; out = {0}; in = {} -> base = {7, 0}
        assert result.payload["base_set"] == {7, 0}


class TestQuery4:
    def test_popularity_counts_external_inlinks(self, engine):
        result = query4_popular_topic_pages(engine)
        mit = dict(result.payload["by_university"]["mit.edu"])
        # Page 4's in-links: 0, 1 (both stanford = external to mit.edu).
        assert mit[4] == 2

    def test_universities_without_matches_empty(self, engine):
        result = query4_popular_topic_pages(engine)
        assert result.payload["by_university"]["caltech.edu"] == []


class TestQuery5:
    def test_in_set_ranking(self, engine):
        result = query5_intra_set_ranking(engine, tld="")
        # Set = {9}; no internal links -> count 0, page 9 listed.
        assert result.payload["top"] == [(9, 0)]

    def test_tld_filter(self, engine):
        result = query5_intra_set_ranking(engine, tld=".edu")
        assert result.payload["top"] == []  # page 9 is .org


class TestQuery6:
    def test_joint_targets(self, engine):
        result = query6_joint_references(engine)
        # S1 = {3}, S2 = {5}; both point to page 9 -> rank 2.
        assert result.payload["result"] == [(9, 2)]

    def test_excludes_pages_in_either_domain(self, engine):
        result = query6_joint_references(engine)
        targets = [page for page, _count in result.payload["result"]]
        domains = {engine.domain_of(p) for p in targets}
        assert "stanford.edu" not in domains
        assert "berkeley.edu" not in domains


class TestRunQuery:
    def test_dispatch_by_name(self, engine):
        result = run_query(engine, "query3")
        assert result.name == "query3"

    def test_unknown_name(self, engine):
        with pytest.raises(QueryError):
            run_query(engine, "query99")


class TestEngine:
    def test_requires_backward_for_backlink_queries(self, tmp_path):
        repo = Repository.from_parts(URLS, EDGES, TERMS)
        forward = FlatFileRepresentation(repo.graph, tmp_path / "f")
        engine = QueryEngine(
            repo, TextIndex(repo), PageRankIndex(repo), forward, backward=None
        )
        with pytest.raises(QueryError):
            query2_comic_popularity(engine)
        forward.close()

    def test_mismatched_representation_rejected(self, tmp_path):
        repo = Repository.from_parts(URLS, EDGES, TERMS)
        from repro.graph.digraph import GraphBuilder

        other = FlatFileRepresentation(GraphBuilder(3).build(), tmp_path / "x")
        with pytest.raises(QueryError):
            QueryEngine(repo, TextIndex(repo), PageRankIndex(repo), other)
        other.close()

    def test_navigation_timer_accumulates(self, engine):
        engine.reset_navigation_time()
        with engine.navigation_timer():
            pass
        with engine.navigation_timer():
            pass
        assert engine.navigation_seconds >= 0.0
        engine.reset_navigation_time()
        assert engine.navigation_seconds == 0.0


class TestCrossRepresentationResults:
    def test_all_schemes_same_query_answers(self, tmp_path_factory):
        """The paper's queries must return identical results regardless of
        which representation executes the navigation."""
        from repro.baselines import (
            Link3Representation,
            RelationalRepresentation,
            SNodeRepresentation,
        )
        from repro.query.workload import PAPER_QUERIES
        from repro.snode.build import build_snode

        repo = Repository.from_parts(URLS, EDGES, TERMS)
        base = tmp_path_factory.mktemp("xrep")
        transpose = repo.graph.transpose()
        text = TextIndex(repo)
        pagerank = PageRankIndex(repo)
        build_f = build_snode(repo, base / "snf")
        build_b = build_snode(
            repo,
            base / "snb",
            __import__("repro.snode.build", fromlist=["BuildOptions"]).BuildOptions(
                transpose=True
            ),
        )
        pairs = {
            "flat": (
                FlatFileRepresentation(repo.graph, base / "ff"),
                FlatFileRepresentation(transpose, base / "fb"),
            ),
            "rel": (
                RelationalRepresentation(repo, base / "rf"),
                RelationalRepresentation(repo, base / "rb", graph=transpose),
            ),
            "link3": (
                Link3Representation(repo, base / "lf"),
                Link3Representation(repo, base / "lb", graph=transpose),
            ),
            "snode": (
                SNodeRepresentation(build_f),
                SNodeRepresentation(build_b),
            ),
        }
        baseline_payloads = None
        for name, (forward, backward) in pairs.items():
            engine = QueryEngine(repo, text, pagerank, forward, backward)
            payloads = {
                qname: qfn(engine).payload for qname, qfn in PAPER_QUERIES
            }
            if baseline_payloads is None:
                baseline_payloads = payloads
            else:
                assert payloads == baseline_payloads, name
        for forward, backward in pairs.values():
            forward.close()
            backward.close()
