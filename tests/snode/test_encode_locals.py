"""Edge cases of the local-index list codec and Link3 helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.deltacodec import unzigzag, zigzag
from repro.errors import CodecError
from repro.snode.encode import _decode_locals, _encode_locals
from repro.util.bitio import BitReader, BitWriter


class TestLocalsCodec:
    @pytest.mark.parametrize(
        "locals_list",
        [
            [],
            [0],
            [5],
            [0, 1, 2, 3],           # dense run -> RLE bit vector wins
            [0, 100],               # sparse -> gamma gaps win
            list(range(0, 200, 2)),  # alternating
            list(range(64)),
        ],
    )
    def test_roundtrip(self, locals_list):
        writer = BitWriter()
        _encode_locals(writer, locals_list)
        assert _decode_locals(BitReader(writer.to_bytes())) == locals_list

    def test_unsorted_rejected(self):
        with pytest.raises(CodecError):
            _encode_locals(BitWriter(), [3, 1])

    def test_duplicates_rejected(self):
        with pytest.raises(CodecError):
            _encode_locals(BitWriter(), [2, 2])

    @given(st.lists(st.integers(0, 300), max_size=60, unique=True).map(sorted))
    def test_property_roundtrip(self, locals_list):
        writer = BitWriter()
        _encode_locals(writer, locals_list)
        assert _decode_locals(BitReader(writer.to_bytes())) == locals_list

    def test_dense_run_smaller_than_gaps(self):
        dense = list(range(120))
        sparse = list(range(0, 120 * 17, 17))[:120]
        dense_writer = BitWriter()
        _encode_locals(dense_writer, dense)
        sparse_writer = BitWriter()
        _encode_locals(sparse_writer, sparse)
        assert len(dense_writer) < len(sparse_writer)


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 1000, -1000])
    def test_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value

    def test_non_negative_output(self):
        for value in (-10, -1, 0, 1, 10):
            assert zigzag(value) >= 0

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_property_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value
