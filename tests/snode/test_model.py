"""Tests for the logical S-Node model (paper section 2 definitions)."""

from __future__ import annotations

from repro.partition.partition import Element, Partition
from repro.snode.model import build_model, decode_superedge
from repro.snode.numbering import build_numbering
from repro.webdata.corpus import Repository


def dense_pair_setup():
    """Figure-3-like setup: N1 = {0,1}, N2 = {2,3,4}.

    Pages 0 and 1 point to ALL pages of N2 (dense -> negative superedge
    wins) and to each other (intranode edges).
    """
    urls = [f"http://a.com/p{i}.html" for i in range(2)] + [
        f"http://b.com/p{i}.html" for i in range(3)
    ]
    edges = [(0, 1), (1, 0)]
    edges += [(0, t) for t in (2, 3, 4)]
    edges += [(1, t) for t in (2, 3, 4)]
    repo = Repository.from_parts(urls, edges)
    partition = Partition(
        5,
        [
            Element(pages=(0, 1), domain="a.com"),
            Element(pages=(2, 3, 4), domain="b.com"),
        ],
    )
    numbering = build_numbering(repo, partition)
    return repo, numbering


class TestSupernodeGraph:
    def test_superedge_exists_iff_some_link(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        assert model.super_adjacency[0] == [1]
        assert model.super_adjacency[1] == []

    def test_superedge_count(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        assert model.num_superedges == 1


class TestIntranode:
    def test_intranode_holds_internal_links(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        rows = model.intranode[0]
        assert rows[0] == [1]
        assert rows[1] == [0]

    def test_empty_intranode_for_unlinked_supernode(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        assert all(row == [] for row in model.intranode[1])


class TestSuperedgePolarity:
    def test_dense_links_become_negative_graph(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        graph = model.superedges[(0, 1)]
        # Both sources link to ALL three targets: zero negative edges.
        assert graph.negative
        assert graph.num_edges == 0
        assert sorted(graph.linked_sources) == [0, 1]

    def test_force_positive_flag(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering, force_positive=True)
        graph = model.superedges[(0, 1)]
        assert not graph.negative
        assert graph.num_edges == 6
        assert model.negative_count == 0

    def test_sparse_links_stay_positive(self):
        urls = [f"http://a.com/p{i}.html" for i in range(3)] + [
            f"http://b.com/p{i}.html" for i in range(5)
        ]
        repo = Repository.from_parts(urls, [(0, 4)])
        partition = Partition(
            8,
            [
                Element(pages=(0, 1, 2), domain="a.com"),
                Element(pages=(3, 4, 5, 6, 7), domain="b.com"),
            ],
        )
        numbering = build_numbering(repo, partition)
        model = build_model(repo.graph, numbering)
        graph = model.superedges[(0, 1)]
        assert not graph.negative
        assert graph.num_edges == 1

    def test_decode_superedge_inverts_negative(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        graph = model.superedges[(0, 1)]
        positive = decode_superedge(graph, target_size=3)
        assert positive == [[0, 1, 2], [0, 1, 2]]

    def test_positive_rows_accessor(self):
        repo, numbering = dense_pair_setup()
        model = build_model(repo.graph, numbering)
        assert model.positive_rows(0, 1) == [[0, 1, 2], [0, 1, 2]]


class TestModelEquivalence:
    def test_model_preserves_every_edge(self, small_repo, small_partition):
        numbering = build_numbering(small_repo, small_partition)
        model = build_model(small_repo.graph, numbering)
        # Reconstruct the full edge set from the model.
        edges = set()
        boundaries = numbering.boundaries
        for supernode, rows in enumerate(model.intranode):
            base = boundaries[supernode]
            for local, row in enumerate(rows):
                for target in row:
                    edges.add((base + local, base + target))
        for (source, target), graph in model.superedges.items():
            source_base = boundaries[source]
            target_base = boundaries[target]
            target_size = numbering.supernode_size(target)
            for local, row in enumerate(decode_superedge(graph, target_size)):
                for t in row:
                    edges.add((source_base + local, target_base + t))
        expected = {
            (numbering.old_to_new[s], numbering.old_to_new[t])
            for s, t in small_repo.graph.edges()
        }
        assert edges == expected
