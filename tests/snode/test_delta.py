"""Delta overlay: merge semantics, WAL replay, store-level equivalence."""

from __future__ import annotations

import random

import pytest

from repro.errors import StorageError
from repro.snode.delta import DeltaOverlay, merged_repository
from repro.storage.metrics import MetricsRegistry
from repro.storage.wal import GraphWal


class TestOverlaySemantics:
    def test_add_remove_last_op_wins(self):
        overlay = DeltaOverlay()
        overlay.apply("add", [(1, 5), (1, 6)])
        overlay.apply("remove", [(1, 5), (1, 2)])
        overlay.apply("add", [(1, 2)])  # re-added: add wins
        assert overlay.merge(1, [2, 3, 5]) == [2, 3, 6]
        assert overlay.merge(0, [7, 8]) == [7, 8]  # untouched passthrough

    def test_merge_is_base_minus_removed_plus_added(self):
        rng = random.Random(11)
        overlay = DeltaOverlay()
        base = sorted(rng.sample(range(200), 40))
        removed = rng.sample(base, 10)
        added = [t for t in rng.sample(range(200, 300), 12)]
        overlay.apply("remove", [(3, t) for t in removed])
        overlay.apply("add", [(3, t) for t in added])
        expected = sorted((set(base) - set(removed)) | set(added))
        assert overlay.merge(3, base) == expected

    def test_transpose_overlay_flips_edges(self):
        forward = DeltaOverlay()
        backward = DeltaOverlay(transpose=True)
        for overlay in (forward, backward):
            overlay.apply("add", [(4, 9)])
            overlay.apply("remove", [(8, 4)])
        assert forward.merge(4, []) == [9]
        assert forward.merge(8, [4]) == []
        assert backward.merge(9, []) == [4]  # 4->9 seen from the target
        assert backward.merge(4, [8]) == []  # 8->4 removed, flipped

    def test_counters_charged_only_on_real_merges(self):
        overlay = DeltaOverlay()
        overlay.apply("add", [(2, 7)])
        overlay.apply("remove", [(2, 1)])
        registry = MetricsRegistry()
        overlay.merge(0, [1, 2], registry)  # no delta: uncharged
        assert registry.get("delta_merges") == 0
        overlay.merge(2, [1, 3], registry)
        assert registry.get("delta_merges") == 1
        assert registry.get("delta_merge_edges") == 2  # one removed + one added

    def test_introspection_and_bad_op(self):
        overlay = DeltaOverlay()
        assert overlay.empty
        overlay.apply("add", [(0, 1), (5, 2)])
        assert overlay.edge_count == 2
        assert overlay.row_count == 2
        assert not overlay.empty
        with pytest.raises(StorageError):
            overlay.apply("merge", [(0, 1)])


class TestWalReplay:
    def test_replay_reproduces_applied_state(self, tmp_path):
        wal = GraphWal(tmp_path / "graph.wal")
        live = DeltaOverlay()
        batches = [
            ("add", [(0, 3), (1, 4)]),
            ("remove", [(0, 3), (2, 2)]),
            ("add", [(2, 2), (2, 9)]),
        ]
        for op, edges in batches:
            wal.append(op, edges)
            live.apply(op, edges)
        replayed, scan = DeltaOverlay.replay(wal)
        assert len(scan.records) == len(batches)
        for source in (0, 1, 2):
            for base in ([], [2, 3, 4], [9]):
                assert replayed.merge(source, base) == live.merge(source, base)

    def test_replay_drops_torn_tail(self, tmp_path):
        wal = GraphWal(tmp_path / "graph.wal")
        wal.append("add", [(0, 1)])
        wal.path.write_bytes(wal.path.read_bytes() + b"\x42phantom")
        overlay, scan = DeltaOverlay.replay(wal)
        assert scan.torn
        assert overlay.merge(0, []) == [1]
        assert overlay.row_count == 1  # nothing resurrected from the tear


class TestStoreEquivalence:
    """Overlay-merged reads equal ground truth through the real store."""

    @pytest.fixture()
    def mutated(self, tiny_repo, small_build, small_repo):
        """Seeded add/remove batches plus the expected adjacency."""
        rng = random.Random(23)
        n = small_repo.num_pages
        removed = []
        for source in rng.sample(range(n), 25):
            row = small_repo.graph.successors_list(source)
            if row:
                removed.append((source, rng.choice(row)))
        added = []
        while len(added) < 30:
            source, target = rng.randrange(n), rng.randrange(n)
            if source != target and not small_repo.graph.has_edge(source, target):
                added.append((source, target))
        expected = {
            page: sorted(
                (set(small_repo.graph.successors_list(page))
                 - {t for s, t in removed if s == page})
                | {t for s, t in added if s == page}
            )
            for page in range(n)
        }
        return removed, added, expected

    def test_representation_and_session_merge(self, small_build, mutated):
        from repro.baselines import SNodeRepresentation

        removed, added, expected = mutated
        representation = SNodeRepresentation(small_build)
        overlay = DeltaOverlay()
        overlay.apply("remove", removed)
        overlay.apply("add", added)
        representation.attach_overlay(overlay)
        try:
            probes = sorted({s for s, _ in removed + added})[:40] + [0, 1]
            for page in probes:
                assert representation.out_neighbors(page) == expected[page]
            many = representation.out_neighbors_many(probes)
            assert many == {page: expected[page] for page in probes}
            # Sessions pick the overlay up dynamically and charge their
            # own registry.
            session = representation.session("delta-test")
            try:
                for page in probes:
                    assert session.out_neighbors(page) == expected[page]
                assert session.metrics.get("delta_merges") > 0
            finally:
                session.close()
            # iterate_all merges too (compaction's input path).
            assert {
                page: row for page, row in representation.iterate_all()
            } == expected
        finally:
            representation.attach_overlay(None)

    def test_merged_repository_matches_expected(
        self, small_repo, small_build, mutated
    ):
        from repro.baselines import SNodeRepresentation

        removed, added, expected = mutated
        overlay = DeltaOverlay()
        overlay.apply("remove", removed)
        overlay.apply("add", added)
        base = SNodeRepresentation(small_build)
        try:
            merged = merged_repository(small_repo, base, overlay)
        finally:
            base.attach_overlay(None)
        assert merged.num_pages == small_repo.num_pages
        for page in range(merged.num_pages):
            assert merged.graph.successors_list(page) == expected[page]
