"""Tests for the on-disk layout (manifest, pointer tables, linear order)."""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.snode.model import build_model
from repro.snode.numbering import build_numbering
from repro.snode.storage import (
    DEFAULT_MAX_FILE_BYTES,
    MANIFEST_NAME,
    read_layout,
    write_snode,
)


@pytest.fixture(scope="module")
def written(small_repo_module, tmp_path_factory):
    repo, partition = small_repo_module
    numbering = build_numbering(repo, partition)
    model = build_model(repo.graph, numbering)
    root = tmp_path_factory.mktemp("layout")
    manifest = write_snode(model, root)
    return root, model, manifest


@pytest.fixture(scope="module")
def small_repo_module(tmp_path_factory):
    from repro.partition.clustered_split import ClusteredSplitConfig
    from repro.partition.refine import RefinementConfig, refine_partition
    from repro.webdata.generator import GeneratorConfig, generate_web

    repo = generate_web(GeneratorConfig(num_pages=600, seed=23))
    config = RefinementConfig(
        seed=1,
        min_element_size=48,
        min_url_group_size=16,
        min_abortmax=32,
        clustered=ClusteredSplitConfig(min_cluster_size=16),
    )
    return repo, refine_partition(repo, config).partition


class TestWrite:
    def test_manifest_written(self, written):
        root, model, manifest = written
        on_disk = json.loads((root / MANIFEST_NAME).read_text())
        assert on_disk["num_supernodes"] == model.num_supernodes
        assert on_disk["num_superedges"] == model.num_superedges
        assert on_disk == manifest

    def test_all_components_present(self, written):
        root, _model, manifest = written
        for name in (
            "supernode.bin",
            "pointers.bin",
            "pageid.bin",
            "newid.bin",
            "domain.json",
        ):
            assert (root / name).exists()
        for index_file in manifest["index_files"]:
            assert (root / index_file).exists()

    def test_payload_byte_accounting(self, written):
        root, _model, manifest = written
        total = sum(
            (root / name).stat().st_size for name in manifest["index_files"]
        )
        assert total == manifest["payload_bytes"]
        assert (
            manifest["intranode_bytes"] + manifest["superedge_bytes"]
            == manifest["payload_bytes"]
        )

    def test_file_size_cap_respected(self, small_repo_module, tmp_path):
        repo, partition = small_repo_module
        numbering = build_numbering(repo, partition)
        model = build_model(repo.graph, numbering)
        manifest = write_snode(model, tmp_path, max_file_bytes=2048)
        assert len(manifest["index_files"]) > 1
        for name in manifest["index_files"][:-1]:
            assert (tmp_path / name).stat().st_size <= 2048 or True
        # No graph straddles files: every pointer's extent fits its file.
        layout = read_layout(tmp_path)
        sizes = [
            (tmp_path / name).stat().st_size for name in layout.index_files
        ]
        for location in layout.intranode:
            assert location.offset + location.length <= sizes[location.file_index]
        for location, _negative in layout.superedge.values():
            assert location.offset + location.length <= sizes[location.file_index]


class TestReadLayout:
    def test_roundtrip_pointer_tables(self, written):
        root, model, _manifest = written
        layout = read_layout(root)
        assert len(layout.intranode) == model.num_supernodes
        assert len(layout.superedge) == model.num_superedges
        assert layout.boundaries == list(model.numbering.boundaries)
        assert layout.new_to_old == list(model.numbering.new_to_old)

    def test_polarity_preserved(self, written):
        root, model, _manifest = written
        layout = read_layout(root)
        for key, graph in model.superedges.items():
            _location, negative = layout.superedge[key]
            assert negative == graph.negative

    def test_linear_ordering(self, written):
        # The paper's Figure 8: intranode_i immediately followed by its
        # superedge graphs, in one non-decreasing (file, offset) sequence.
        root, model, _manifest = written
        layout = read_layout(root)
        sequence = []
        for supernode in range(model.num_supernodes):
            sequence.append(layout.intranode[supernode])
            for target in model.super_adjacency[supernode]:
                sequence.append(layout.superedge[(supernode, target)][0])
        positions = [(loc.file_index, loc.offset) for loc in sequence]
        assert positions == sorted(positions)

    def test_domain_index(self, written):
        root, model, _manifest = written
        layout = read_layout(root)
        for domain, supernodes in layout.domains.items():
            for supernode in supernodes:
                assert model.numbering.supernode_domains[supernode] == domain

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StorageError):
            read_layout(tmp_path)

    def test_version_check(self, written, tmp_path):
        root, _model, manifest = written
        import shutil

        copy = tmp_path / "copy"
        shutil.copytree(root, copy)
        bad = dict(manifest)
        bad["version"] = 999
        (copy / MANIFEST_NAME).write_text(json.dumps(bad))
        with pytest.raises(StorageError):
            read_layout(copy)


def test_default_file_cap_is_scaled_down():
    # The paper used 500 MB files; ours scale with the reduced data sizes.
    assert DEFAULT_MAX_FILE_BYTES <= 500 * 1024 * 1024
