"""Tests for SNodeStore: adjacency access, buffer manager, instrumentation."""

from __future__ import annotations

import random

import pytest

from repro.errors import StorageError
from repro.snode.store import SNodeStore


class TestAdjacency:
    def test_out_neighbors_match_ground_truth(self, small_repo, small_build):
        store = small_build.store
        numbering = small_build.numbering
        rng = random.Random(0)
        for old in rng.sample(range(small_repo.num_pages), 150):
            new = numbering.old_to_new[old]
            got = sorted(numbering.new_to_old[t] for t in store.out_neighbors(new))
            assert got == small_repo.graph.successors_list(old)

    def test_out_neighbors_many_matches_single(self, small_repo, small_build):
        store = small_build.store
        pages = list(range(0, small_repo.num_pages, 37))
        bulk = store.out_neighbors_many(pages)
        for page in pages:
            assert bulk[page] == store.out_neighbors(page)

    def test_iterate_all_covers_every_page(self, small_repo, small_build):
        store = small_build.store
        seen = {}
        for page, row in store.iterate_all():
            seen[page] = row
        assert len(seen) == small_repo.num_pages
        sample = random.Random(1).sample(range(small_repo.num_pages), 50)
        for page in sample:
            assert seen[page] == store.out_neighbors(page)

    def test_page_out_of_range(self, small_build):
        with pytest.raises(StorageError):
            small_build.store.out_neighbors(10**9)

    def test_missing_superedge_rejected(self, small_build):
        store = small_build.store
        source = 0
        missing = next(
            t
            for t in range(store.num_supernodes)
            if t not in store.super_adjacency[source] and t != source
        )
        with pytest.raises(StorageError):
            store.superedge_rows(source, missing)


class TestIndexes:
    def test_pageid_index(self, small_build):
        store = small_build.store
        for supernode in range(store.num_supernodes):
            first, last = store.supernode_range(supernode)
            assert store.supernode_of(first) == supernode
            assert store.supernode_of(last - 1) == supernode

    def test_domain_index(self, small_repo, small_build):
        store = small_build.store
        numbering = small_build.numbering
        domain = small_repo.page(0).domain
        supernodes = store.supernodes_of_domain(domain)
        assert supernodes
        for supernode in supernodes:
            assert numbering.supernode_domains[supernode] == domain

    def test_unknown_domain_empty(self, small_build):
        assert small_build.store.supernodes_of_domain("nowhere.example") == []


class TestBufferManager:
    def test_small_buffer_causes_evictions(self, small_repo, small_build, tmp_path):
        store = SNodeStore(small_build.root, buffer_bytes=2048)
        for page in range(0, small_repo.num_pages, 11):
            store.out_neighbors(page)
        assert store.stats.graphs_evicted > 0
        assert store.buffer_stats()["used_bytes"] <= 2048 * 4  # oversize slack
        store.close()

    def test_warm_buffer_hits(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        loaded_before = store.stats.graphs_loaded
        store.out_neighbors(0)
        assert store.stats.graphs_loaded == loaded_before
        assert store.stats.buffer_hits > 0
        store.close()

    def test_drop_buffers_forces_reload(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        store.drop_buffers()
        before = store.stats.graphs_loaded
        store.out_neighbors(0)
        assert store.stats.graphs_loaded > before
        store.close()

    def test_set_buffer_bytes_resets(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        store.set_buffer_bytes(16384)
        assert store.buffer_stats()["capacity_bytes"] == 16384
        store.close()

    def test_set_buffer_bytes_below_pinned_floor_raises(self, small_build):
        from repro.errors import BufferCapacityError

        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        pinned = store.buffer_stats()["pinned_bytes"]
        assert pinned > 0
        with pytest.raises(BufferCapacityError):
            store.set_buffer_bytes(pinned - 1)
        # The failed resize must leave the pool untouched.
        assert store.buffer_stats()["capacity_bytes"] == 1 << 26
        store.out_neighbors(0)
        store.close()


class TestLoadDigraph:
    def test_reconstructs_whole_graph(self, small_repo, small_build):
        graph = small_build.store.load_digraph()
        numbering = small_build.numbering
        expected = {
            (numbering.old_to_new[s], numbering.old_to_new[t])
            for s, t in small_repo.graph.edges()
        }
        assert set(graph.edges()) == expected

    def test_global_algorithms_run_on_loaded_graph(self, small_build):
        from repro.graph.algorithms import pagerank

        graph = small_build.store.load_digraph()
        scores = pagerank(graph)
        assert abs(scores.sum() - 1.0) < 1e-6


class TestInstrumentation:
    def test_events_recorded(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        store.out_neighbors(0)
        kinds = {kind for kind, _ in store.stats.events}
        assert "load-intra" in kinds
        store.close()

    def test_distinct_loaded_counts(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        first, last = store.supernode_range(0)
        for page in range(first, last):
            store.out_neighbors(page)
        intranode, superedge = store.stats.distinct_loaded()
        assert intranode == 1
        assert superedge == len(store.super_adjacency[0])
        store.close()

    def test_seeks_counted(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        store.out_neighbors(0)
        last_page = store.num_pages - 1
        store.out_neighbors(last_page)
        assert store.stats.disk_seeks >= 1
        assert store.stats.bytes_read > 0
        store.close()

    def test_reset_clears_counters(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        store.stats.reset()
        assert store.stats.graphs_loaded == 0
        assert store.stats.events == []
        store.close()


class TestReadSessions:
    def test_session_results_match_store(self, small_repo, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        with store.session(label="client-0") as session:
            for page in range(0, small_repo.num_pages, 53):
                assert session.out_neighbors(page) == store.out_neighbors(page)
            pages = list(range(0, small_repo.num_pages, 71))
            assert session.out_neighbors_many(pages) == {
                page: store.out_neighbors(page) for page in pages
            }
        store.close()

    def test_session_io_attributed_not_global(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        base_before = store.metrics.get("bytes_read")
        session = store.session(label="c")
        session.out_neighbors(0)
        assert session.io_stats()["bytes_read"] > 0
        assert session.stats.graphs_loaded > 0
        # The store's own registry was not charged for session reads ...
        assert store.metrics.get("bytes_read") == base_before
        # ... but the merged view includes the live session.
        assert (
            store.metrics.get_total("bytes_read")
            == base_before + session.io_stats()["bytes_read"]
        )
        session.close()
        store.close()

    def test_close_merges_and_conserves_totals(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        session = store.session()
        session.out_neighbors(0)
        total_before = store.metrics.get_total("bytes_read")
        session.close()
        assert session.closed
        assert store.metrics.get("bytes_read") == total_before
        assert store.metrics.children() == []
        session.close()  # idempotent
        store.close()

    def test_sessions_share_the_buffer_pool(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        first = store.session(label="warm")
        second = store.session(label="cold")
        first.out_neighbors(0)
        loads_before = second.stats.graphs_loaded
        second.out_neighbors(0)  # cached by the first session's read
        assert second.stats.graphs_loaded == loads_before
        assert second.stats.buffer_hits > 0
        first.close()
        second.close()
        store.close()

    def test_distinct_loaded_aggregates_across_sessions(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        first, last = store.supernode_range(0)
        with store.session() as a, store.session() as b:
            a.out_neighbors(first)
            b.out_neighbors(last - 1)
        intranode = store.metrics.distinct("intranode")
        assert intranode == 1  # same supernode, merged as one distinct graph
        store.close()
