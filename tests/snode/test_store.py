"""Tests for SNodeStore: adjacency access, buffer manager, instrumentation."""

from __future__ import annotations

import random

import pytest

from repro.errors import StorageError
from repro.snode.store import SNodeStore


class TestAdjacency:
    def test_out_neighbors_match_ground_truth(self, small_repo, small_build):
        store = small_build.store
        numbering = small_build.numbering
        rng = random.Random(0)
        for old in rng.sample(range(small_repo.num_pages), 150):
            new = numbering.old_to_new[old]
            got = sorted(numbering.new_to_old[t] for t in store.out_neighbors(new))
            assert got == small_repo.graph.successors_list(old)

    def test_out_neighbors_many_matches_single(self, small_repo, small_build):
        store = small_build.store
        pages = list(range(0, small_repo.num_pages, 37))
        bulk = store.out_neighbors_many(pages)
        for page in pages:
            assert bulk[page] == store.out_neighbors(page)

    def test_iterate_all_covers_every_page(self, small_repo, small_build):
        store = small_build.store
        seen = {}
        for page, row in store.iterate_all():
            seen[page] = row
        assert len(seen) == small_repo.num_pages
        sample = random.Random(1).sample(range(small_repo.num_pages), 50)
        for page in sample:
            assert seen[page] == store.out_neighbors(page)

    def test_page_out_of_range(self, small_build):
        with pytest.raises(StorageError):
            small_build.store.out_neighbors(10**9)

    def test_missing_superedge_rejected(self, small_build):
        store = small_build.store
        source = 0
        missing = next(
            t
            for t in range(store.num_supernodes)
            if t not in store.super_adjacency[source] and t != source
        )
        with pytest.raises(StorageError):
            store.superedge_rows(source, missing)


class TestIndexes:
    def test_pageid_index(self, small_build):
        store = small_build.store
        for supernode in range(store.num_supernodes):
            first, last = store.supernode_range(supernode)
            assert store.supernode_of(first) == supernode
            assert store.supernode_of(last - 1) == supernode

    def test_domain_index(self, small_repo, small_build):
        store = small_build.store
        numbering = small_build.numbering
        domain = small_repo.page(0).domain
        supernodes = store.supernodes_of_domain(domain)
        assert supernodes
        for supernode in supernodes:
            assert numbering.supernode_domains[supernode] == domain

    def test_unknown_domain_empty(self, small_build):
        assert small_build.store.supernodes_of_domain("nowhere.example") == []


class TestBufferManager:
    def test_small_buffer_causes_evictions(self, small_repo, small_build, tmp_path):
        store = SNodeStore(small_build.root, buffer_bytes=2048)
        for page in range(0, small_repo.num_pages, 11):
            store.out_neighbors(page)
        assert store.stats.graphs_evicted > 0
        assert store.buffer_stats()["used_bytes"] <= 2048 * 4  # oversize slack
        store.close()

    def test_warm_buffer_hits(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        loaded_before = store.stats.graphs_loaded
        store.out_neighbors(0)
        assert store.stats.graphs_loaded == loaded_before
        assert store.stats.buffer_hits > 0
        store.close()

    def test_drop_buffers_forces_reload(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        store.drop_buffers()
        before = store.stats.graphs_loaded
        store.out_neighbors(0)
        assert store.stats.graphs_loaded > before
        store.close()

    def test_set_buffer_bytes_resets(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        store.set_buffer_bytes(4096)
        assert store.buffer_stats()["capacity_bytes"] == 4096
        store.close()


class TestLoadDigraph:
    def test_reconstructs_whole_graph(self, small_repo, small_build):
        graph = small_build.store.load_digraph()
        numbering = small_build.numbering
        expected = {
            (numbering.old_to_new[s], numbering.old_to_new[t])
            for s, t in small_repo.graph.edges()
        }
        assert set(graph.edges()) == expected

    def test_global_algorithms_run_on_loaded_graph(self, small_build):
        from repro.graph.algorithms import pagerank

        graph = small_build.store.load_digraph()
        scores = pagerank(graph)
        assert abs(scores.sum() - 1.0) < 1e-6


class TestInstrumentation:
    def test_events_recorded(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        store.out_neighbors(0)
        kinds = {kind for kind, _ in store.stats.events}
        assert "load-intra" in kinds
        store.close()

    def test_distinct_loaded_counts(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        first, last = store.supernode_range(0)
        for page in range(first, last):
            store.out_neighbors(page)
        intranode, superedge = store.stats.distinct_loaded()
        assert intranode == 1
        assert superedge == len(store.super_adjacency[0])
        store.close()

    def test_seeks_counted(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.stats.reset()
        store.out_neighbors(0)
        last_page = store.num_pages - 1
        store.out_neighbors(last_page)
        assert store.stats.disk_seeks >= 1
        assert store.stats.bytes_read > 0
        store.close()

    def test_reset_clears_counters(self, small_build):
        store = SNodeStore(small_build.root, buffer_bytes=1 << 26)
        store.out_neighbors(0)
        store.stats.reset()
        assert store.stats.graphs_loaded == 0
        assert store.stats.events == []
        store.close()
