"""Failure-injection tests: verify_snode catches storage corruption."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.snode.storage import MANIFEST_NAME
from repro.snode.verify import verify_snode


@pytest.fixture()
def copy_of_build(small_build, tmp_path):
    target = tmp_path / "copy"
    shutil.copytree(small_build.root, target)
    return target


class TestCleanBuild:
    def test_fresh_build_verifies(self, small_build):
        report = verify_snode(small_build.root)
        assert report.ok, report.problems
        assert report.graphs_checked > 0

    def test_structure_only_pass(self, small_build):
        report = verify_snode(small_build.root, decode_payloads=False)
        assert report.ok
        assert report.graphs_checked == 0


class TestCorruption:
    def test_missing_manifest(self, copy_of_build):
        (copy_of_build / MANIFEST_NAME).unlink()
        report = verify_snode(copy_of_build)
        assert not report.ok

    def test_missing_index_file(self, copy_of_build):
        manifest = json.loads((copy_of_build / MANIFEST_NAME).read_text())
        (copy_of_build / manifest["index_files"][0]).unlink()
        report = verify_snode(copy_of_build)
        assert not report.ok
        assert any("missing index file" in p for p in report.problems)

    def test_truncated_index_file(self, copy_of_build):
        manifest = json.loads((copy_of_build / MANIFEST_NAME).read_text())
        path = copy_of_build / manifest["index_files"][-1]
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        report = verify_snode(copy_of_build)
        assert not report.ok

    def test_flipped_payload_bytes(self, copy_of_build):
        # Corrupt payload bits: decoding should fail or row counts break.
        manifest = json.loads((copy_of_build / MANIFEST_NAME).read_text())
        path = copy_of_build / manifest["index_files"][0]
        data = bytearray(path.read_bytes())
        for position in range(0, min(len(data), 400), 7):
            data[position] ^= 0xFF
        path.write_bytes(bytes(data))
        report = verify_snode(copy_of_build)
        assert not report.ok

    def test_corrupt_pageid_index(self, copy_of_build):
        path = copy_of_build / "pageid.bin"
        payload = bytearray(path.read_bytes())
        payload[0] = 0x7F  # first boundary != 0
        path.write_bytes(bytes(payload))
        report = verify_snode(copy_of_build, decode_payloads=False)
        assert not report.ok

    def test_manifest_size_mismatch(self, copy_of_build):
        manifest = json.loads((copy_of_build / MANIFEST_NAME).read_text())
        manifest["payload_bytes"] += 1000
        (copy_of_build / MANIFEST_NAME).write_text(json.dumps(manifest))
        report = verify_snode(copy_of_build, decode_payloads=False)
        assert not report.ok
        assert any("manifest says" in p for p in report.problems)
