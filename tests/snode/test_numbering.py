"""Tests for page/supernode numbering and the PageID index."""

from __future__ import annotations

import pytest

from repro.errors import BuildError
from repro.partition.partition import Element, Partition
from repro.snode.numbering import build_numbering
from repro.webdata.corpus import Repository
from repro.webdata.urls import lexicographic_key


def make_setup():
    urls = [
        "http://b.com/z.html",   # 0
        "http://a.com/x.html",   # 1
        "http://a.com/a.html",   # 2
        "http://b.com/a.html",   # 3
    ]
    repo = Repository.from_parts(urls, [(0, 1), (1, 2)])
    partition = Partition(
        4,
        [
            Element(pages=(1, 2), domain="a.com"),
            Element(pages=(0, 3), domain="b.com"),
        ],
    )
    return repo, partition


class TestNumbering:
    def test_supernode_ranges_contiguous(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        assert numbering.boundaries[0] == 0
        assert numbering.boundaries[-1] == 4
        assert numbering.num_supernodes == 2

    def test_pages_sorted_by_url_within_supernode(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        for supernode in range(numbering.num_supernodes):
            first, last = numbering.supernode_range(supernode)
            keys = [
                lexicographic_key(repo.page(numbering.new_to_old[n]).url)
                for n in range(first, last)
            ]
            assert keys == sorted(keys)

    def test_supernodes_ordered_by_domain(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        assert list(numbering.supernode_domains) == ["a.com", "b.com"]

    def test_permutation_is_bijective(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        assert sorted(numbering.old_to_new) == list(range(4))
        for old in range(4):
            assert numbering.new_to_old[numbering.old_to_new[old]] == old

    def test_supernode_of_binary_search(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        for new_page in range(4):
            supernode = numbering.supernode_of(new_page)
            first, last = numbering.supernode_range(supernode)
            assert first <= new_page < last

    def test_local_index(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        supernode, local = numbering.local_index(1)
        assert numbering.boundaries[supernode] + local == 1

    def test_out_of_range_rejected(self):
        repo, partition = make_setup()
        numbering = build_numbering(repo, partition)
        with pytest.raises(BuildError):
            numbering.supernode_of(4)
        with pytest.raises(BuildError):
            numbering.supernode_range(2)

    def test_partition_size_mismatch(self):
        repo, _ = make_setup()
        wrong = Partition(2, [Element(pages=(0, 1), domain="x")])
        with pytest.raises(BuildError):
            build_numbering(repo, wrong)

    def test_numbering_on_generated_repo(self, small_repo, small_partition):
        numbering = build_numbering(small_repo, small_partition)
        assert numbering.num_pages == small_repo.num_pages
        assert numbering.num_supernodes == small_partition.num_elements
        sizes = [
            numbering.supernode_size(s) for s in range(numbering.num_supernodes)
        ]
        assert sum(sizes) == small_repo.num_pages
