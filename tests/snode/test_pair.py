"""Tests for the bidirectional SNodePair convenience."""

from __future__ import annotations

from repro.index import PageRankIndex, TextIndex
from repro.snode.pair import SNodePair


class TestSNodePair:
    def test_both_directions_correct(self, tiny_repo, tmp_path):
        with SNodePair.build(tiny_repo, tmp_path) as pair:
            transpose = tiny_repo.graph.transpose()
            for page in range(0, tiny_repo.num_pages, 17):
                assert pair.out_neighbors(page) == tiny_repo.graph.successors_list(
                    page
                )
                assert pair.in_neighbors(page) == [
                    int(t) for t in transpose.successors(page)
                ]

    def test_engine_wiring(self, tiny_repo, tmp_path):
        from repro.query.workload import query3_kleinberg_base_set

        with SNodePair.build(tiny_repo, tmp_path) as pair:
            engine = pair.make_engine(
                tiny_repo, TextIndex(tiny_repo), PageRankIndex(tiny_repo)
            )
            result = query3_kleinberg_base_set(engine)
            assert result.payload["base_set_size"] >= result.payload["roots"]

    def test_bits_per_edge_pair(self, tiny_repo, tmp_path):
        with SNodePair.build(tiny_repo, tmp_path) as pair:
            wg, wgt = pair.total_bits_per_edge()
            assert wg > 0 and wgt > 0

    def test_reset_stats(self, tiny_repo, tmp_path):
        with SNodePair.build(tiny_repo, tmp_path) as pair:
            pair.out_neighbors(0)
            pair.reset_stats()
            assert pair.forward_build.store.stats.graphs_loaded == 0

    def test_directory_layout(self, tiny_repo, tmp_path):
        with SNodePair.build(tiny_repo, tmp_path):
            assert (tmp_path / "wg" / "manifest.json").exists()
            assert (tmp_path / "wgt" / "manifest.json").exists()
