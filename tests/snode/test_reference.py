"""Tests for reference encoding: costs, plans, Edmonds, serialization."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.snode.reference import (
    DICTIONARY_PARENT,
    EncodingPlan,
    build_dictionary,
    decode_rows,
    direct_cost,
    encode_rows,
    minimum_arborescence,
    plan_references,
    reference_cost,
)
from repro.util.bitio import BitReader, BitWriter


def rows_strategy():
    """Random row collections over a shared small target space."""
    return st.integers(min_value=1, max_value=40).flatmap(
        lambda space: st.lists(
            st.lists(
                st.integers(0, space - 1), max_size=10, unique=True
            ).map(sorted),
            max_size=20,
        )
    )


class TestCosts:
    def test_direct_cost_matches_encoding(self):
        rows = [[0, 3, 7], [], [1]]
        plan = EncodingPlan(parents=[-1, -1, -1], total_bits=0)
        writer = BitWriter()
        encode_rows(writer, rows, plan=plan)
        from repro.util.varint import gamma_cost

        expected = gamma_cost(len(rows)) + sum(direct_cost(r) for r in rows)
        assert len(writer) == expected

    def test_reference_cost_cheap_for_identical_rows(self):
        row = list(range(0, 30, 2))
        assert reference_cost(row, row, 1) < direct_cost(row)

    def test_reference_cost_counts_extras(self):
        base = [0, 2, 4]
        more = [0, 2, 4, 30]
        assert reference_cost(more, base, 1) > reference_cost(base, base, 1)


class TestArborescence:
    def test_star_from_root(self):
        edges = [(3, 0, 1.0), (3, 1, 1.0), (3, 2, 1.0)]
        parents = minimum_arborescence(4, edges, 3)
        assert parents == {0: 3, 1: 3, 2: 3}

    def test_prefers_cheap_chain(self):
        edges = [(2, 0, 1.0), (0, 1, 1.0), (2, 1, 5.0)]
        parents = minimum_arborescence(3, edges, 2)
        assert parents == {0: 2, 1: 0}

    def test_cycle_contraction(self):
        # 0 -> 1 -> 0 cheap cycle; root can only enter through 0.
        edges = [(2, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 10.0)]
        parents = minimum_arborescence(3, edges, 2)
        assert parents[1] == 0 or parents[0] == 1
        total = 0.0
        for target, source in parents.items():
            total += next(w for s, t, w in edges if s == source and t == target)
        assert total == pytest.approx(11.0)

    def test_unreachable_node_raises(self):
        with pytest.raises(CodecError):
            minimum_arborescence(3, [(2, 0, 1.0)], 2)

    @settings(deadline=None, max_examples=30)
    @given(st.data())
    def test_property_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=5))
        root = n - 1
        weights = {}
        for source in range(n):
            for target in range(n - 1):  # root has no incoming edges
                if source == target:
                    continue
                weights[(source, target)] = data.draw(
                    st.integers(min_value=1, max_value=9)
                )
        edges = [(s, t, float(w)) for (s, t), w in weights.items()]
        parents = minimum_arborescence(n, edges, root)
        got = sum(weights[(parents[t], t)] for t in range(n - 1))
        # Brute force: every node picks any parent; keep assignments that
        # form an arborescence (no cycles, all reachable from root).
        best = None
        non_roots = list(range(n - 1))
        choices = [
            [s for s in range(n) if s != t and (s, t) in weights]
            for t in non_roots
        ]
        for assignment in itertools.product(*choices):
            parent_of = dict(zip(non_roots, assignment))
            # check acyclic/reachable
            valid = True
            for node in non_roots:
                seen = set()
                cursor = node
                while cursor != root:
                    if cursor in seen:
                        valid = False
                        break
                    seen.add(cursor)
                    cursor = parent_of[cursor]
                if not valid:
                    break
            if not valid:
                continue
            cost = sum(weights[(parent_of[t], t)] for t in non_roots)
            best = cost if best is None else min(best, cost)
        assert got == pytest.approx(best)


class TestPlans:
    def test_empty_collection(self):
        plan = plan_references([])
        assert plan.parents == []
        assert plan.total_bits == 0

    def test_similar_rows_get_references(self):
        base = list(range(0, 40, 2))
        rows = [base, base, base, sorted(base[:-1] + [39])]
        plan = plan_references(rows)
        assert sum(1 for p in plan.parents if p != -1) >= 2

    def test_windowed_mode_references_backward_only(self):
        rows = [[i % 5] for i in range(50)]
        plan = plan_references(rows, window=4, full_affinity_limit=10)
        for y, parent in enumerate(plan.parents):
            if parent >= 0:
                assert y - 4 <= parent < y

    def test_full_mode_beats_or_ties_windowed(self):
        rng = random.Random(0)
        base = sorted(rng.sample(range(100), 12))
        rows = [sorted(set(base) | {rng.randrange(100)}) for _ in range(30)]
        rng.shuffle(rows)
        full = plan_references(rows, full_affinity_limit=100)
        windowed = plan_references(rows, window=4, full_affinity_limit=0)
        assert full.total_bits <= windowed.total_bits

    def test_dictionary_plan_flags_usage(self):
        rows = [[7]] * 20
        dictionary = build_dictionary(rows)
        plan = plan_references(rows, dictionary=dictionary)
        assert plan.used_dictionary
        assert DICTIONARY_PARENT in plan.parents

    def test_dictionary_rejected_when_useless(self):
        rows = [[i] for i in range(20)]  # no repeated targets
        dictionary = build_dictionary(rows)
        assert dictionary == []
        plan = plan_references(rows, dictionary=dictionary)
        assert not plan.used_dictionary


class TestBuildDictionary:
    def test_frequent_targets_only(self):
        rows = [[1, 2], [2, 3], [2], [9]]
        assert build_dictionary(rows) == [2]

    def test_cap_keeps_most_frequent(self):
        rows = [[i, 99] for i in range(50)] + [[i, 99] for i in range(50)]
        dictionary = build_dictionary(rows, max_entries=3)
        assert 99 in dictionary
        assert len(dictionary) == 3

    def test_sorted_output(self):
        rows = [[5, 1], [5, 1], [3], [3]]
        assert build_dictionary(rows) == [1, 3, 5]


class TestSerialization:
    @settings(deadline=None, max_examples=60)
    @given(rows_strategy())
    def test_property_roundtrip_plain(self, rows):
        writer = BitWriter()
        encode_rows(writer, rows)
        assert decode_rows(BitReader(writer.to_bytes())) == rows

    @settings(deadline=None, max_examples=60)
    @given(rows_strategy())
    def test_property_roundtrip_with_dictionary(self, rows):
        dictionary = build_dictionary(rows)
        plan = plan_references(rows, dictionary=dictionary)
        stored = dictionary if plan.used_dictionary else []
        writer = BitWriter()
        encode_rows(writer, rows, plan=plan, dictionary=stored)
        assert decode_rows(BitReader(writer.to_bytes()), dictionary=stored) == rows

    @settings(deadline=None, max_examples=40)
    @given(rows_strategy())
    def test_property_windowed_roundtrip(self, rows):
        writer = BitWriter()
        encode_rows(writer, rows, window=3, full_affinity_limit=2)
        assert decode_rows(BitReader(writer.to_bytes())) == rows

    def test_plan_mismatch_rejected(self):
        with pytest.raises(CodecError):
            encode_rows(
                BitWriter(),
                [[0], [1]],
                plan=EncodingPlan(parents=[-1], total_bits=0),
            )

    def test_forward_references_resolve(self):
        # Force row 0 to reference row 1 (a forward reference).
        rows = [[0, 1, 2], [0, 1, 2]]
        plan = EncodingPlan(parents=[1, -1], total_bits=0)
        writer = BitWriter()
        encode_rows(writer, rows, plan=plan)
        assert decode_rows(BitReader(writer.to_bytes())) == rows

    def test_total_bits_matches_actual_encoding(self):
        rng = random.Random(1)
        rows = [sorted(rng.sample(range(60), 8)) for _ in range(25)]
        rows[1] = rows[0]
        plan = plan_references(rows)
        writer = BitWriter()
        encode_rows(writer, rows, plan=plan)
        from repro.util.varint import gamma_cost

        assert len(writer) == plan.total_bits + gamma_cost(len(rows))
