"""End-to-end tests of the S-Node build pipeline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.snode.build import BuildOptions, build_snode


class TestBuild:
    def test_roundtrip_full_graph(self, small_repo, small_build):
        for old in range(0, small_repo.num_pages, 13):
            assert small_build.translate_out(old) == small_repo.graph.successors_list(
                old
            )

    def test_total_edges_matches_graph(self, small_repo, small_build):
        assert small_build.total_edges() == small_repo.num_links

    def test_bits_per_edge_positive_and_sane(self, small_build):
        assert 1.0 < small_build.bits_per_edge < 64.0

    def test_manifest_counts(self, small_build):
        manifest = small_build.manifest
        assert manifest["num_supernodes"] == small_build.model.num_supernodes
        assert (
            manifest["positive_superedges"] + manifest["negative_superedges"]
            == small_build.model.num_superedges
        )

    def test_refinement_stats_attached(self, small_build):
        assert small_build.refinement is not None
        assert small_build.refinement.iterations > 0

    def test_reopen_from_disk(self, small_repo, small_build):
        from repro.snode.store import SNodeStore

        store = SNodeStore(small_build.root)
        numbering = small_build.numbering
        for old in random.Random(2).sample(range(small_repo.num_pages), 40):
            new = numbering.old_to_new[old]
            got = sorted(numbering.new_to_old[t] for t in store.out_neighbors(new))
            assert got == small_repo.graph.successors_list(old)
        store.close()

    def test_transpose_build(self, small_repo, test_refinement_config, tmp_path):
        build = build_snode(
            small_repo,
            tmp_path,
            BuildOptions(refinement=test_refinement_config, transpose=True),
        )
        transpose = small_repo.graph.transpose()
        for old in random.Random(3).sample(range(small_repo.num_pages), 40):
            assert build.translate_out(old) == [
                int(t) for t in transpose.successors(old)
            ]
        build.store.close()

    def test_explicit_partition_used(self, tiny_repo, tmp_path):
        from repro.partition.partition import Partition

        partition = Partition.by_domain([p.domain for p in tiny_repo.pages])
        build = build_snode(tiny_repo, tmp_path, partition=partition)
        assert build.model.num_supernodes == partition.num_elements
        assert build.refinement is None
        build.store.close()

    def test_partition_size_mismatch_rejected(self, tiny_repo, tmp_path):
        from repro.errors import BuildError
        from repro.partition.partition import Partition

        with pytest.raises(BuildError):
            build_snode(
                tiny_repo, tmp_path, partition=Partition.trivial(3)
            )

    def test_no_reference_encoding_still_correct(self, tiny_repo, tmp_path):
        build = build_snode(
            tiny_repo,
            tmp_path,
            BuildOptions(
                reference_window=0, full_affinity_limit=0, use_dictionary=False
            ),
        )
        for old in range(0, tiny_repo.num_pages, 7):
            assert build.translate_out(old) == tiny_repo.graph.successors_list(old)
        build.store.close()

    def test_force_positive_still_correct(self, tiny_repo, tmp_path):
        build = build_snode(
            tiny_repo, tmp_path, BuildOptions(force_positive_superedges=True)
        )
        assert build.model.negative_count == 0
        for old in range(0, tiny_repo.num_pages, 7):
            assert build.translate_out(old) == tiny_repo.graph.successors_list(old)
        build.store.close()


@settings(deadline=None, max_examples=5)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_build_equivalence_random_webs(seed, tmp_path_factory):
    """The representation is lossless for arbitrary generated webs."""
    from repro.webdata.generator import GeneratorConfig, generate_web

    repo = generate_web(GeneratorConfig(num_pages=150, seed=seed))
    root = tmp_path_factory.mktemp(f"prop_{seed}")
    build = build_snode(repo, root)
    for old in range(repo.num_pages):
        assert build.translate_out(old) == repo.graph.successors_list(old)
    build.store.close()
