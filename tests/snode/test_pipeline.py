"""Staged build pipeline: determinism, checkpoints, resume, workers.

The contracts under test (the "Build pipeline" section of DESIGN.md):

* **Worker-count determinism** — a build with ``workers`` 1, 2 or 4
  produces byte-identical on-disk trees (every file's bytes, and the
  manifest's SHA-256 build digest) on the same input;
* **Stage-boundary resume** — killing the build immediately after any
  stage's checkpoint is persisted, then rerunning with ``resume=True``,
  completes the build with exactly the bytes of an uninterrupted run,
  restoring precisely the stages before the kill;
* **Write-op crash resume** — killing the build at arbitrary write-op
  indexes (the PR 4 fault-injection sweep) and resuming also converges
  to identical bytes;
* **Fingerprint safety** — resuming against a different repository or
  different build knobs falls back to a fresh build instead of splicing
  mismatched checkpoints;
* ``REPRO_BUILD_WORKERS`` is honoured (and validated) when
  ``BuildOptions.workers`` is None;
* shard planning covers the supernode range exactly, in order.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.errors import BuildError
from repro.snode.build import BuildOptions, build_snode
from repro.snode.pipeline import (
    STAGES,
    BuildPipeline,
    plan_shards,
    resolve_workers,
)
from repro.storage import faults
from repro.storage.atomic import BuildTransaction
from repro.storage.faults import FaultPlan, SimulatedCrash


def _tree_digest(root: Path) -> str:
    """SHA-256 over every committed file's name and bytes."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file():
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def reference_build(tiny_repo, test_refinement_config, tmp_path_factory):
    """An uninterrupted serial build: the byte-level ground truth."""
    root = tmp_path_factory.mktemp("pipeline_ref") / "snode"
    build = build_snode(
        tiny_repo, root, BuildOptions(refinement=test_refinement_config)
    )
    baseline = {page: row for page, row in build.store.iterate_all()}
    build.store.close()
    return build, _tree_digest(root), baseline


class TestWorkerDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_build_is_byte_identical_to_serial(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path, workers
    ):
        ref_build, ref_digest, _baseline = reference_build
        root = tmp_path / f"w{workers}"
        build = build_snode(
            tiny_repo,
            root,
            BuildOptions(refinement=test_refinement_config, workers=workers),
        )
        build.store.close()
        assert build.workers == workers
        assert build.shards > 1
        assert _tree_digest(root) == ref_digest
        assert build.manifest["digest"] == ref_build.manifest["digest"]

    def test_env_var_sets_worker_count(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path, monkeypatch
    ):
        _ref_build, ref_digest, _baseline = reference_build
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "2")
        build = build_snode(
            tiny_repo,
            tmp_path / "env",
            BuildOptions(refinement=test_refinement_config),
        )
        build.store.close()
        assert build.workers == 2
        assert _tree_digest(tmp_path / "env") == ref_digest

    def test_explicit_workers_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "4")
        assert resolve_workers(2) == 2
        assert resolve_workers(None) == 4
        monkeypatch.delenv("REPRO_BUILD_WORKERS")
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("raw", ["0", "-2", "two", "1.5"])
    def test_bad_env_worker_count_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BUILD_WORKERS", raw)
        with pytest.raises(BuildError):
            resolve_workers(None)

    def test_bad_explicit_worker_count_rejected(self):
        with pytest.raises(BuildError):
            resolve_workers(0)


class TestShardPlanning:
    def test_shards_tile_the_supernode_range(self, reference_build):
        build, _digest, _baseline = reference_build
        for workers in (1, 2, 4, 7):
            tasks = plan_shards(
                build.model,
                window=8,
                full_affinity_limit=96,
                use_dictionary=True,
                workers=workers,
            )
            assert tasks[0].first == 0
            assert tasks[-1].last == build.model.num_supernodes
            for before, after in zip(tasks, tasks[1:]):
                assert before.last == after.first
            assert sum(t.num_supernodes for t in tasks) == build.model.num_supernodes

    def test_shard_count_scales_with_workers(self, reference_build):
        # About four shards per worker, capped by the supernode count, so
        # the pool stays busy even when shard costs are uneven.
        build, _digest, _baseline = reference_build
        n = build.model.num_supernodes
        for workers in (1, 2, 4):
            tasks = plan_shards(
                build.model,
                window=8,
                full_affinity_limit=96,
                use_dictionary=True,
                workers=workers,
            )
            assert len(tasks) == min(n, workers * 4)


class TestWorkerObservability:
    def test_parallel_build_absorbs_worker_spans(
        self, tiny_repo, test_refinement_config, tmp_path
    ):
        from repro.obs.tracing import Tracer, activated

        tracer = Tracer()
        with activated(tracer):
            with tracer.span("test"):
                build = build_snode(
                    tiny_repo,
                    tmp_path / "traced",
                    BuildOptions(refinement=test_refinement_config, workers=2),
                )
        build.store.close()
        summary = tracer.summary()
        worker_names = [n for n in summary if n.startswith("worker.")]
        # Per-shard encode spans came back through ShardResult summaries
        # instead of being dropped on the worker side of the fork.
        assert "worker.encode.intranode" in worker_names
        assert summary["worker.encode.intranode"]["count"] >= build.shards


class _KillAfter:
    """``on_stage_complete`` hook that crashes after a chosen stage."""

    def __init__(self, stage: str) -> None:
        self.stage = stage

    def __call__(self, name: str) -> None:
        if name == self.stage:
            raise SimulatedCrash(f"killed after stage {name!r}")


class TestStageBoundaryResume:
    @pytest.mark.parametrize("stage", STAGES)
    def test_kill_after_each_stage_then_resume_is_identical(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path, stage
    ):
        ref_build, ref_digest, baseline = reference_build
        root = tmp_path / f"kill_{stage}"
        pipeline = BuildPipeline(
            tiny_repo,
            root,
            options=BuildOptions(refinement=test_refinement_config),
            on_stage_complete=_KillAfter(stage),
        )
        with pytest.raises(SimulatedCrash):
            pipeline.run()

        resumed = build_snode(
            tiny_repo,
            root,
            BuildOptions(refinement=test_refinement_config),
            resume=True,
        )
        resumed.store.close()
        # The completed prefix (up to the killed stage) is restored, not
        # recomputed; assemble always reruns.
        expected = STAGES[: STAGES.index(stage) + 1]
        expected = tuple(name for name in expected if name != "assemble")
        assert resumed.resumed_stages == expected
        assert _tree_digest(root) == ref_digest
        assert resumed.manifest["digest"] == ref_build.manifest["digest"]
        from repro.snode.store import SNodeStore

        with SNodeStore(root) as store:
            assert {page: row for page, row in store.iterate_all()} == baseline

    def test_resume_with_parallel_workers_is_identical(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path
    ):
        _ref_build, ref_digest, _baseline = reference_build
        root = tmp_path / "switch"
        pipeline = BuildPipeline(
            tiny_repo,
            root,
            options=BuildOptions(refinement=test_refinement_config),
            on_stage_complete=_KillAfter("number"),
        )
        with pytest.raises(SimulatedCrash):
            pipeline.run()
        # Worker count is excluded from the fingerprint: a serial build
        # resumes under --workers 2 and still produces the same bytes.
        resumed = build_snode(
            tiny_repo,
            root,
            BuildOptions(refinement=test_refinement_config, workers=2),
            resume=True,
        )
        resumed.store.close()
        assert "number" in resumed.resumed_stages
        assert _tree_digest(root) == ref_digest

    def test_resume_without_checkpoints_just_builds(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path
    ):
        _ref_build, ref_digest, _baseline = reference_build
        build = build_snode(
            tiny_repo,
            tmp_path / "fresh",
            BuildOptions(refinement=test_refinement_config),
            resume=True,
        )
        build.store.close()
        assert build.resumed_stages == ()
        assert _tree_digest(tmp_path / "fresh") == ref_digest


class TestWriteOpCrashResume:
    def test_crash_at_write_ops_then_resume_is_identical(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path
    ):
        """The PR 4 sweep machinery, now followed by --resume."""
        _ref_build, ref_digest, _baseline = reference_build
        options = BuildOptions(refinement=test_refinement_config)
        with faults.activated(FaultPlan(seed=0)) as plan:
            count_build = build_snode(tiny_repo, tmp_path / "count", options)
        count_build.store.close()
        total_ops = plan.write_ops
        assert total_ops >= 8

        # A handful of spread-out crash points keeps the sweep affordable;
        # the stage-boundary sweep above covers every checkpoint edge.
        for index in sorted({0, 1, total_ops // 2, total_ops - 2, total_ops - 1}):
            root = tmp_path / f"crash_{index}"
            plan = FaultPlan(
                seed=300 + index, crash_at_write=index, torn_writes=True
            )
            with faults.activated(plan):
                with pytest.raises(SimulatedCrash):
                    build_snode(tiny_repo, root, options)
            resumed = build_snode(tiny_repo, root, options, resume=True)
            resumed.store.close()
            assert _tree_digest(root) == ref_digest

    def test_crash_at_commit_leaves_resumable_checkpoints(
        self, tiny_repo, test_refinement_config, reference_build, tmp_path
    ):
        _ref_build, ref_digest, _baseline = reference_build
        root = tmp_path / "at_commit"
        pipeline = BuildPipeline(
            tiny_repo,
            root,
            options=BuildOptions(refinement=test_refinement_config),
            on_stage_complete=_KillAfter("assemble"),
        )
        with pytest.raises(SimulatedCrash):
            pipeline.run()
        # The checkpoint registry survived the kill between manifest and
        # commit, so the resume restores everything but assemble.
        transaction = BuildTransaction(root, resume=True)
        assert transaction.resumed
        assert set(transaction.stages) == set(STAGES[:-1])
        resumed = build_snode(
            tiny_repo,
            root,
            BuildOptions(refinement=test_refinement_config),
            resume=True,
        )
        resumed.store.close()
        assert resumed.resumed_stages == STAGES[:-1]
        assert _tree_digest(root) == ref_digest


class TestFingerprintSafety:
    def test_resume_with_different_options_starts_fresh(
        self, tiny_repo, test_refinement_config, tmp_path
    ):
        root = tmp_path / "refit"
        pipeline = BuildPipeline(
            tiny_repo,
            root,
            options=BuildOptions(refinement=test_refinement_config),
            on_stage_complete=_KillAfter("model"),
        )
        with pytest.raises(SimulatedCrash):
            pipeline.run()
        # A different encoding knob changes the fingerprint: nothing may
        # be restored from the stale checkpoints.
        changed = BuildOptions(
            refinement=test_refinement_config, use_dictionary=False
        )
        resumed = build_snode(tiny_repo, root, changed, resume=True)
        resumed.store.close()
        assert resumed.resumed_stages == ()

    def test_resume_with_different_repository_starts_fresh(
        self, tiny_repo, small_repo, test_refinement_config, tmp_path
    ):
        root = tmp_path / "swap"
        pipeline = BuildPipeline(
            tiny_repo,
            root,
            options=BuildOptions(refinement=test_refinement_config),
            on_stage_complete=_KillAfter("refine"),
        )
        with pytest.raises(SimulatedCrash):
            pipeline.run()
        resumed = build_snode(
            small_repo,
            root,
            BuildOptions(refinement=test_refinement_config),
            resume=True,
        )
        resumed.store.close()
        assert resumed.resumed_stages == ()
        assert resumed.store.num_pages == small_repo.num_pages


class TestCommittedBuildIsClean:
    def test_no_checkpoint_state_in_committed_tree(
        self, reference_build
    ):
        build, _digest, _baseline = reference_build
        leftovers = [
            path.name
            for path in build.root.rglob("*")
            if path.name.startswith(".checkpoint") or path.name == ".stages"
        ]
        assert leftovers == []

    def test_stage_seconds_cover_all_stages(self, reference_build):
        build, _digest, _baseline = reference_build
        assert set(build.stage_seconds) == set(STAGES)
        assert build.resumed_stages == ()
