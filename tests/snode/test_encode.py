"""Tests for the physical encoders (supernode graph, intranode, superedge)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.snode.encode import (
    POINTER_BYTES,
    decode_intranode,
    decode_superedge_payload,
    decode_supernode_graph,
    encode_intranode,
    encode_superedge,
    encode_supernode_graph,
    positive_rows_from_payload,
)
from repro.snode.model import SuperedgeGraph


class TestSupernodeGraph:
    def test_roundtrip_simple(self):
        adjacency = [[1, 2], [2], [], [0, 1, 2]]
        data = encode_supernode_graph(adjacency)
        assert decode_supernode_graph(data) == adjacency

    def test_empty_graph(self):
        assert decode_supernode_graph(encode_supernode_graph([])) == []

    def test_single_vertex_no_edges(self):
        assert decode_supernode_graph(encode_supernode_graph([[]])) == [[]]

    def test_high_in_degree_gets_short_code(self):
        # Vertex 0 is referenced everywhere: its Huffman code must be short,
        # so graphs dominated by links to 0 are smaller than uniform graphs.
        n = 30
        skewed = [[0] for _ in range(n)]
        uniform = [[i % n] for i in range(1, n + 1)]
        assert len(encode_supernode_graph(skewed)) < len(
            encode_supernode_graph(uniform)
        )

    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=1, max_value=25).flatmap(
            lambda n: st.lists(
                st.lists(st.integers(0, n - 1), max_size=6, unique=True).map(sorted),
                min_size=n,
                max_size=n,
            )
        )
    )
    def test_property_roundtrip(self, adjacency):
        data = encode_supernode_graph(adjacency)
        assert decode_supernode_graph(data) == adjacency


class TestIntranode:
    def test_roundtrip_with_empties(self):
        rows = [[1, 2], [], [0], []]
        assert decode_intranode(encode_intranode(rows)) == rows

    def test_empty_collection(self):
        assert decode_intranode(encode_intranode([])) == []

    def test_no_dictionary_mode(self):
        rows = [[1], [1], [1], [2, 3]]
        data = encode_intranode(rows, use_dictionary=False)
        assert decode_intranode(data) == rows

    def test_similar_rows_compress(self):
        rng = random.Random(0)
        base = sorted(rng.sample(range(200), 15))
        similar = [base for _ in range(40)]
        dissimilar = [sorted(rng.sample(range(200), 15)) for _ in range(40)]
        assert len(encode_intranode(similar)) < len(encode_intranode(dissimilar)) / 2


def make_superedge(rows, negative=False, linked=()):
    return SuperedgeGraph(
        source=0,
        target=1,
        negative=negative,
        rows=tuple(tuple(r) for r in rows),
        linked_sources=tuple(linked),
    )


class TestSuperedge:
    def test_positive_roundtrip(self):
        rows = [[0, 2], [], [1], []]
        payload = encode_superedge(make_superedge(rows))
        negative, linked, decoded = decode_superedge_payload(payload)
        assert not negative
        assert linked == [0, 2]
        assert decoded == [[0, 2], [1]]

    def test_positive_rows_from_payload(self):
        rows = [[0, 2], [], [1], []]
        payload = encode_superedge(make_superedge(rows))
        assert positive_rows_from_payload(payload, 4, 3) == rows

    def test_negative_roundtrip(self):
        # Sources 0 and 1 link to everything except what's listed.
        rows = [(2,), ()]  # source 0 misses target 2; source 1 misses none
        graph = make_superedge(rows, negative=True, linked=(0, 1))
        payload = encode_superedge(graph)
        positive = positive_rows_from_payload(payload, source_size=2, target_size=3)
        assert positive == [[0, 1], [0, 1, 2]]

    def test_all_sources_unlinked(self):
        payload = encode_superedge(make_superedge([[], [], []]))
        assert positive_rows_from_payload(payload, 3, 5) == [[], [], []]

    def test_repeated_singleton_rows_are_tiny(self):
        many = [[3]] * 100
        few = [[i % 7] for i in range(100)]
        assert len(encode_superedge(make_superedge(many))) < len(
            encode_superedge(make_superedge(few))
        )


class TestSizeAccounting:
    def test_pointer_bytes_constant(self):
        assert POINTER_BYTES == 4

    def test_supernode_graph_size_includes_pointers(self, small_build):
        from repro.snode.encode import supernode_graph_size_bytes

        model = small_build.model
        size = supernode_graph_size_bytes(model)
        payload = len(encode_supernode_graph(model.super_adjacency))
        assert size == payload + 4 * (model.num_supernodes + model.num_superedges)
